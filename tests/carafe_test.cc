// Tests for Carafe: graph generators, single-machine references, RStore
// graph storage, and the distributed BSP engine validated against the
// references (PageRank, BFS, connected components).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "core/cluster.h"

namespace rstore::carafe {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

// ----------------------------------------------------------- generators --
TEST(GraphGenTest, UniformGraphHasRequestedShape) {
  Graph g = UniformRandomGraph(1000, 8.0, 1);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_EQ(g.num_edges(), 8000u);
  uint64_t total = 0;
  for (uint64_t v = 0; v < g.num_vertices(); ++v) total += g.out_degree(v);
  EXPECT_EQ(total, g.num_edges());
  for (const uint32_t t : g.targets) EXPECT_LT(t, 1000u);
}

TEST(GraphGenTest, GeneratorsAreDeterministic) {
  Graph a = UniformRandomGraph(500, 4.0, 7);
  Graph b = UniformRandomGraph(500, 4.0, 7);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.targets, b.targets);
  Graph c = UniformRandomGraph(500, 4.0, 8);
  EXPECT_NE(a.targets, c.targets);
  Graph r1 = RmatGraph(10, 8.0, 3);
  Graph r2 = RmatGraph(10, 8.0, 3);
  EXPECT_EQ(r1.targets, r2.targets);
}

TEST(GraphGenTest, RmatIsSkewedUniformIsNot) {
  Graph rmat = RmatGraph(12, 16.0, 5);
  Graph uni = UniformRandomGraph(1 << 12, 16.0, 5);
  auto max_degree = [](const Graph& g) {
    uint64_t best = 0;
    for (uint64_t v = 0; v < g.num_vertices(); ++v) {
      best = std::max(best, g.out_degree(v));
    }
    return best;
  };
  // Power-law graphs have hubs far above the mean degree.
  EXPECT_GT(max_degree(rmat), 4 * max_degree(uni));
}

TEST(GraphGenTest, TransposeInvertsEdges) {
  Graph g = UniformRandomGraph(200, 5.0, 11);
  Graph t = Transpose(g);
  EXPECT_EQ(t.num_edges(), g.num_edges());
  // Every edge (u,v) appears as (v,u) in the transpose.
  std::multiset<std::pair<uint32_t, uint32_t>> fwd, rev;
  for (uint64_t u = 0; u < g.num_vertices(); ++u) {
    const auto [lo, hi] = g.edge_range(u);
    for (uint64_t e = lo; e < hi; ++e) {
      fwd.emplace(static_cast<uint32_t>(u), g.targets[e]);
    }
  }
  for (uint64_t u = 0; u < t.num_vertices(); ++u) {
    const auto [lo, hi] = t.edge_range(u);
    for (uint64_t e = lo; e < hi; ++e) {
      rev.emplace(t.targets[e], static_cast<uint32_t>(u));
    }
  }
  EXPECT_EQ(fwd, rev);
  // Transpose twice = original (up to CSR canonical order).
  Graph tt = Transpose(t);
  uint64_t total = 0;
  for (uint64_t v = 0; v < tt.num_vertices(); ++v) {
    total += tt.out_degree(v);
    EXPECT_EQ(tt.out_degree(v), g.out_degree(v)) << v;
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(GraphGenTest, MakeSymmetricAddsReverses) {
  Graph g;
  g.offsets = {0, 2, 2, 3};
  g.targets = {1, 2, 0};  // 0->1, 0->2, 2->0
  Graph s = MakeSymmetric(g);
  EXPECT_EQ(s.num_vertices(), 3u);
  // Unique undirected edges {0,1}, {0,2} → 4 directed edges.
  EXPECT_EQ(s.num_edges(), 4u);
  EXPECT_EQ(s.out_degree(0), 2u);
  EXPECT_EQ(s.out_degree(1), 1u);
  EXPECT_EQ(s.out_degree(2), 1u);
}

// ----------------------------------------------------------- references --
TEST(ReferenceTest, PageRankSumsToOne) {
  Graph g = RmatGraph(10, 8.0, 2);
  auto rank = ReferencePageRank(g, 30);
  const double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (const double r : rank) EXPECT_GT(r, 0.0);
}

TEST(ReferenceTest, PageRankOnStarFavorsCenter) {
  // Star: every leaf points at vertex 0.
  const uint64_t n = 50;
  Graph g;
  g.offsets.assign(n + 1, 0);
  for (uint64_t v = 1; v < n; ++v) g.offsets[v + 1] = v;
  g.offsets[1] = 0;
  g.targets.assign(n - 1, 0);
  auto rank = ReferencePageRank(g, 50);
  for (uint64_t v = 1; v < n; ++v) EXPECT_GT(rank[0], 10 * rank[v]);
}

TEST(ReferenceTest, BfsDistancesOnAChain) {
  const uint64_t n = 10;
  Graph g;
  g.offsets.resize(n + 1);
  for (uint64_t v = 0; v < n; ++v) g.offsets[v + 1] = std::min(v + 1, n - 1);
  g.targets.resize(n - 1);
  for (uint64_t v = 0; v + 1 < n; ++v) g.targets[v] = static_cast<uint32_t>(v + 1);
  auto dist = ReferenceBfs(g, 0);
  for (uint64_t v = 0; v < n; ++v) EXPECT_EQ(dist[v], v);
  auto from_tail = ReferenceBfs(g, n - 1);
  EXPECT_EQ(from_tail[0], std::numeric_limits<uint32_t>::max());
}

TEST(ReferenceTest, ComponentsOnDisjointCliques) {
  // Two triangles: {0,1,2} and {3,4,5}.
  Graph g;
  g.offsets = {0, 2, 4, 6, 8, 10, 12};
  g.targets = {1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4};
  auto label = ReferenceComponents(g);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[1], 0u);
  EXPECT_EQ(label[2], 0u);
  EXPECT_EQ(label[3], 3u);
  EXPECT_EQ(label[4], 3u);
  EXPECT_EQ(label[5], 3u);
}

// -------------------------------------------------------------- storage --
ClusterConfig GraphCluster(uint32_t clients) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = clients;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

TEST(StorageTest, UploadOpenDropRoundTrip) {
  TestCluster cluster(GraphCluster(1));
  cluster.RunClient([&](RStoreClient& client) {
    Graph g = UniformRandomGraph(2000, 8.0, 3);
    ASSERT_TRUE(UploadGraph(client, "g", g).ok());
    auto opened = OpenGraph(client, "g");
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(opened->n, 2000u);
    EXPECT_EQ(opened->m, g.num_edges());
    ASSERT_TRUE(DropGraph(client, "g").ok());
    EXPECT_EQ(OpenGraph(client, "g").code(), ErrorCode::kNotFound);
  });
}

TEST(StorageTest, WorkerPartitionsCoverAllVertices) {
  TestCluster cluster(GraphCluster(1));
  cluster.RunClient([&](RStoreClient& client) {
    Graph g = UniformRandomGraph(1003, 6.0, 9);  // deliberately not a
                                                 // multiple of workers
    ASSERT_TRUE(UploadGraph(client, "g", g).ok());
    uint64_t covered = 0;
    for (uint32_t w = 0; w < 5; ++w) {
      Worker worker(client, "g", WorkerConfig{w, 5, "t"});
      ASSERT_TRUE(worker.Init().ok());
      covered += worker.vertex_hi() - worker.vertex_lo();
      if (w > 0) {
        Worker prev(client, "g", WorkerConfig{w - 1, 5, "t"});
        ASSERT_TRUE(prev.Init().ok());
        EXPECT_EQ(prev.vertex_hi(), worker.vertex_lo());
      }
    }
    EXPECT_EQ(covered, 1003u);
  });
}

// ------------------------------------------------- distributed vs. ref --
struct EngineParam {
  uint32_t workers;
  bool rmat;
};

class EngineFixture : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineFixture, DistributedPageRankMatchesReference) {
  const EngineParam p = GetParam();
  Graph g = p.rmat ? RmatGraph(10, 8.0, 4)
                   : UniformRandomGraph(1 << 10, 8.0, 4);
  auto expected = ReferencePageRank(g, 10);

  ClusterConfig cfg = GraphCluster(p.workers);
  TestCluster cluster(cfg);
  std::vector<std::vector<double>> results(p.workers);
  for (uint32_t w = 0; w < p.workers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      Worker worker(client, "g", WorkerConfig{w, p.workers, "pr"});
      ASSERT_TRUE(worker.Init().ok());
      auto ranks = worker.PageRank({.iterations = 10});
      ASSERT_TRUE(ranks.ok()) << ranks.status();
      results[w] = std::move(*ranks);
    });
  }
  cluster.sim().Run();

  for (uint32_t w = 0; w < p.workers; ++w) {
    ASSERT_EQ(results[w].size(), expected.size()) << "worker " << w;
    for (size_t v = 0; v < expected.size(); ++v) {
      ASSERT_NEAR(results[w][v], expected[v], 1e-10)
          << "worker " << w << " vertex " << v;
    }
  }
}

TEST_P(EngineFixture, DistributedBfsMatchesReference) {
  const EngineParam p = GetParam();
  Graph g = p.rmat ? RmatGraph(10, 8.0, 6)
                   : UniformRandomGraph(1 << 10, 8.0, 6);
  const uint64_t source = 1;
  auto expected = ReferenceBfs(g, source);

  TestCluster cluster(GraphCluster(p.workers));
  std::vector<std::vector<uint32_t>> results(p.workers);
  for (uint32_t w = 0; w < p.workers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      Worker worker(client, "g", WorkerConfig{w, p.workers, "bfs"});
      ASSERT_TRUE(worker.Init().ok());
      auto dist = worker.Bfs(source);
      ASSERT_TRUE(dist.ok()) << dist.status();
      results[w] = std::move(*dist);
    });
  }
  cluster.sim().Run();
  for (uint32_t w = 0; w < p.workers; ++w) {
    EXPECT_EQ(results[w], expected) << "worker " << w;
  }
}

TEST_P(EngineFixture, DistributedComponentsMatchReference) {
  const EngineParam p = GetParam();
  // Sparse so several components exist.
  Graph base = p.rmat ? RmatGraph(9, 1.1, 8)
                      : UniformRandomGraph(1 << 9, 1.1, 8);
  Graph g = MakeSymmetric(base);
  auto expected = ReferenceComponents(g);

  TestCluster cluster(GraphCluster(p.workers));
  std::vector<std::vector<uint64_t>> results(p.workers);
  for (uint32_t w = 0; w < p.workers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      Worker worker(client, "g", WorkerConfig{w, p.workers, "cc"});
      ASSERT_TRUE(worker.Init().ok());
      auto labels = worker.Components();
      ASSERT_TRUE(labels.ok()) << labels.status();
      results[w] = std::move(*labels);
    });
  }
  cluster.sim().Run();
  for (uint32_t w = 0; w < p.workers; ++w) {
    EXPECT_EQ(results[w], expected) << "worker " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkerCounts, EngineFixture,
    ::testing::Values(EngineParam{1, false}, EngineParam{2, false},
                      EngineParam{4, false}, EngineParam{4, true}),
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return std::string(info.param.rmat ? "rmat" : "uniform") +
             std::to_string(info.param.workers) + "w";
    });


// ------------------------------------------------------------- weighted --
TEST(WeightedTest, AddRandomWeightsIsDeterministicAndBounded) {
  Graph a = UniformRandomGraph(500, 4.0, 7);
  Graph b = a;
  AddRandomWeights(a, 3, 50);
  AddRandomWeights(b, 3, 50);
  EXPECT_EQ(a.weights, b.weights);
  ASSERT_EQ(a.weights.size(), a.num_edges());
  for (uint32_t w : a.weights) {
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 50u);
  }
  AddRandomWeights(b, 4, 50);
  EXPECT_NE(a.weights, b.weights);
}

TEST(WeightedTest, TransposeCarriesWeights) {
  Graph g;
  g.offsets = {0, 2, 3};
  g.targets = {1, 0, 0};  // 0->1(w=5), 0->0(w=7), 1->0(w=9)
  g.weights = {5, 7, 9};
  Graph t = Transpose(g);
  ASSERT_TRUE(t.weighted());
  // In t: vertex 0's in-edges were 0->0(7) and 1->0(9); vertex 1's was
  // 0->1(5).
  std::multiset<std::pair<uint32_t, uint32_t>> v0;
  const auto [lo, hi] = t.edge_range(0);
  for (uint64_t e = lo; e < hi; ++e) v0.emplace(t.targets[e], t.weights[e]);
  EXPECT_EQ(v0, (std::multiset<std::pair<uint32_t, uint32_t>>{{0, 7},
                                                              {1, 9}}));
  EXPECT_EQ(t.weights[t.offsets[1]], 5u);
}

TEST(WeightedTest, ReferenceSsspOnKnownGraph) {
  // 0 -5-> 1 -1-> 2, 0 -10-> 2: shortest 0->2 is 6 via 1.
  Graph g;
  g.offsets = {0, 2, 3, 3};
  g.targets = {1, 2, 2};
  g.weights = {5, 10, 1};
  auto dist = ReferenceSssp(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 5u);
  EXPECT_EQ(dist[2], 6u);
  auto from1 = ReferenceSssp(g, 1);
  EXPECT_EQ(from1[0], std::numeric_limits<uint64_t>::max());
}

TEST(WeightedTest, StorageRoundTripsWeightedFlag) {
  TestCluster cluster(GraphCluster(1));
  cluster.RunClient([&](RStoreClient& client) {
    Graph g = UniformRandomGraph(300, 4.0, 3);
    AddRandomWeights(g, 8, 30);
    ASSERT_TRUE(UploadGraph(client, "wg", g).ok());
    auto opened = OpenGraph(client, "wg");
    ASSERT_TRUE(opened.ok());
    EXPECT_TRUE(opened->weighted);

    Graph u = UniformRandomGraph(300, 4.0, 3);
    ASSERT_TRUE(UploadGraph(client, "ug", u).ok());
    auto opened_u = OpenGraph(client, "ug");
    ASSERT_TRUE(opened_u.ok());
    EXPECT_FALSE(opened_u->weighted);
    ASSERT_TRUE(DropGraph(client, "wg").ok());
    ASSERT_TRUE(DropGraph(client, "ug").ok());
  });
}

TEST_P(EngineFixture, DistributedSsspMatchesReference) {
  const EngineParam p = GetParam();
  Graph g = p.rmat ? RmatGraph(10, 6.0, 12)
                   : UniformRandomGraph(1 << 10, 6.0, 12);
  AddRandomWeights(g, 21, 40);
  const uint64_t source = 3;
  auto expected = ReferenceSssp(g, source);

  TestCluster cluster(GraphCluster(p.workers));
  std::vector<std::vector<uint64_t>> results(p.workers);
  for (uint32_t w = 0; w < p.workers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      Worker worker(client, "g", WorkerConfig{w, p.workers, "sssp"});
      ASSERT_TRUE(worker.Init().ok());
      auto dist = worker.Sssp(source);
      ASSERT_TRUE(dist.ok()) << dist.status();
      results[w] = std::move(*dist);
    });
  }
  cluster.sim().Run();
  for (uint32_t w = 0; w < p.workers; ++w) {
    EXPECT_EQ(results[w], expected) << "worker " << w;
  }
}

TEST(EngineTest, SsspRequiresWeights) {
  TestCluster cluster(GraphCluster(1));
  cluster.RunClient([&](RStoreClient& client) {
    Graph g = UniformRandomGraph(100, 4.0, 1);
    ASSERT_TRUE(UploadGraph(client, "g", g).ok());
    Worker worker(client, "g", WorkerConfig{0, 1, "x"});
    ASSERT_TRUE(worker.Init().ok());
    EXPECT_EQ(worker.Sssp(0).code(), ErrorCode::kInvalidArgument);
  });
}

TEST(EngineTest, MoreWorkersFinishFasterOnBigGraphs) {
  // The scaling claim behind E4: distributed PageRank gets faster with
  // workers because per-iteration compute and reads split W ways.
  auto run = [](uint32_t workers) {
    Graph g = RmatGraph(13, 16.0, 4);
    ClusterConfig cfg = GraphCluster(workers);
    cfg.memory_servers = 8;
    TestCluster cluster(cfg);
    sim::Nanos elapsed = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      cluster.SpawnClient(w, [&, w, workers](RStoreClient& client) {
        if (w == 0) {
          ASSERT_TRUE(UploadGraph(client, "g", g).ok());
          ASSERT_TRUE(client.NotifyInc("uploaded").ok());
        } else {
          ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
        }
        Worker worker(client, "g", WorkerConfig{w, workers, "s"});
        ASSERT_TRUE(worker.Init().ok());
        ASSERT_TRUE(client.NotifyInc("ready").ok());
        ASSERT_TRUE(client.WaitNotify("ready", workers).ok());
        const sim::Nanos t0 = sim::Now();
        ASSERT_TRUE(worker.PageRank({.iterations = 5}).ok());
        if (w == 0) elapsed = sim::Now() - t0;
      });
    }
    cluster.sim().Run();
    return elapsed;
  };
  const sim::Nanos one = run(1);
  const sim::Nanos four = run(4);
  EXPECT_LT(four, one * 2 / 3);
}

}  // namespace
}  // namespace rstore::carafe
