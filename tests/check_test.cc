// Tests for rcheck, the happens-before race and access-lifetime checker.
//
// Six injected violations — one per class the checker must catch — each
// asserted to be reported exactly once, plus the two meta-properties the
// design leans on: zero probe effect (attaching the checker never moves
// virtual time) and zero false positives on representative E4 (PageRank)
// and E9 (KV) workloads.
//
// All tests attach the checker programmatically, so Shutdown() leaves
// the verdict to the test instead of aborting the process.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "check/check.h"
#include "core/cluster.h"
#include "kv/kv.h"
#include "obs/trace_check.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::RmapOptions;
using core::TestCluster;

size_t CountType(const check::Checker& checker, check::ViolationType type) {
  size_t n = 0;
  for (const check::Violation& v : checker.violations()) {
    if (v.type == type) ++n;
  }
  return n;
}

ClusterConfig TwoClientConfig() {
  ClusterConfig cfg;
  cfg.memory_servers = 1;
  cfg.client_nodes = 2;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

// --------------------------------------------- injected violations ----

// Two clients write overlapping bytes of the same region with no
// synchronization between the writes: the canonical remote/remote race.
TEST(CheckTest, RemoteWriteWriteRaceReportedOnce) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      auto buf = client.AllocBuffer(64);
      ASSERT_TRUE(buf.ok());
      std::memset(buf->begin(), 0x40 + static_cast<int>(w), 64);
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("shared", 64 << 10).ok());
        auto region = client.Rmap("shared");
        ASSERT_TRUE(region.ok());
        // The notify edge predates the write, so the write itself stays
        // unordered against client 1's.
        ASSERT_TRUE(client.NotifyInc("ready").ok());
        ASSERT_TRUE((*region)->Write(0, buf->data).ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
        auto region = client.Rmap("shared");
        ASSERT_TRUE(region.ok());
        ASSERT_TRUE((*region)->Write(0, buf->data).ok());
      }
    });
  }
  cluster.sim().Run();

  EXPECT_EQ(CountType(checker, check::ViolationType::kRace), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
}

// A reader chases a write whose completion the writer never observed
// before signaling: the notify edge is not a fence, so the read races
// the still-pending write.
TEST(CheckTest, ReadRacingUnfencedWriteReportedOnce) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      auto buf = client.AllocBuffer(64);
      ASSERT_TRUE(buf.ok());
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("unfenced", 64 << 10).ok());
        auto region = client.Rmap("unfenced");
        ASSERT_TRUE(region.ok());
        std::memset(buf->begin(), 0x7A, 64);
        auto future = (*region)->WriteAsync(0, buf->data);
        ASSERT_TRUE(future.ok());
        // Signal before waiting: the classic missing-fence bug.
        ASSERT_TRUE(client.NotifyInc("posted").ok());
        ASSERT_TRUE(client.WaitNotify("read-done", 1).ok());
        ASSERT_TRUE(future->Wait().ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("posted", 1).ok());
        auto region = client.Rmap("unfenced");
        ASSERT_TRUE(region.ok());
        ASSERT_TRUE((*region)->Read(0, buf->data).ok());
        ASSERT_TRUE(client.NotifyInc("read-done").ok());
      }
    });
  }
  cluster.sim().Run();

  ASSERT_EQ(CountType(checker, check::ViolationType::kRace), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
  // The report must carry the un-fenced (never observed) endpoint.
  const check::Violation& v = checker.violations().front();
  EXPECT_TRUE(v.a.pending || v.b.pending);
}

// The DumpJson schema is what tools/rcheck_report and the CI artifact
// pipeline consume. Reproduce the un-fenced race above, dump it, parse it
// back with the same dependency-free reader the tool uses, and pin every
// field the tool touches against the checker's in-memory violation.
TEST(CheckTest, DumpJsonMatchesReportSchema) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      auto buf = client.AllocBuffer(64);
      ASSERT_TRUE(buf.ok());
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("schema", 64 << 10).ok());
        auto region = client.Rmap("schema");
        ASSERT_TRUE(region.ok());
        auto future = (*region)->WriteAsync(0, buf->data);
        ASSERT_TRUE(future.ok());
        ASSERT_TRUE(client.NotifyInc("posted").ok());
        ASSERT_TRUE(client.WaitNotify("read-done", 1).ok());
        ASSERT_TRUE(future->Wait().ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("posted", 1).ok());
        auto region = client.Rmap("schema");
        ASSERT_TRUE(region.ok());
        ASSERT_TRUE((*region)->Read(0, buf->data).ok());
        ASSERT_TRUE(client.NotifyInc("read-done").ok());
      }
    });
  }
  cluster.sim().Run();
  ASSERT_EQ(checker.violations().size(), 1u);
  const check::Violation& want = checker.violations().front();

  std::ostringstream os;
  checker.DumpJson(os);
  auto parsed = obs::ParseJson(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  ASSERT_TRUE(parsed->Is(obs::JsonValue::Type::kObject));
  const obs::JsonValue* violations = parsed->Find("violations");
  ASSERT_NE(violations, nullptr);
  ASSERT_TRUE(violations->Is(obs::JsonValue::Type::kArray));
  ASSERT_EQ(violations->array.size(), 1u);
  const obs::JsonValue& v = violations->array.front();

  const obs::JsonValue* type = v.Find("type");
  ASSERT_NE(type, nullptr);
  ASSERT_TRUE(type->Is(obs::JsonValue::Type::kString));
  EXPECT_EQ(type->str, check::ToString(want.type));

  const obs::JsonValue* target = v.Find("target_node");
  ASSERT_NE(target, nullptr);
  ASSERT_TRUE(target->Is(obs::JsonValue::Type::kNumber));
  EXPECT_EQ(static_cast<uint32_t>(target->number), want.target_node);

  const obs::JsonValue* region = v.Find("region");
  ASSERT_NE(region, nullptr);
  ASSERT_TRUE(region->Is(obs::JsonValue::Type::kString));
  EXPECT_EQ(region->str, "schema");

  const obs::JsonValue* lo = v.Find("region_lo");
  const obs::JsonValue* hi = v.Find("region_hi");
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  ASSERT_TRUE(lo->Is(obs::JsonValue::Type::kNumber));
  ASSERT_TRUE(hi->Is(obs::JsonValue::Type::kNumber));
  EXPECT_LT(lo->number, hi->number);

  const obs::JsonValue* detail = v.Find("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_TRUE(detail->Is(obs::JsonValue::Type::kString));

  const auto check_endpoint = [](const obs::JsonValue* e,
                                 const check::Endpoint& w) {
    ASSERT_NE(e, nullptr);
    ASSERT_TRUE(e->Is(obs::JsonValue::Type::kObject));
    for (const char* field : {"node", "vtime", "lo", "hi"}) {
      const obs::JsonValue* n = e->Find(field);
      ASSERT_NE(n, nullptr) << field;
      EXPECT_TRUE(n->Is(obs::JsonValue::Type::kNumber)) << field;
    }
    EXPECT_EQ(static_cast<uint32_t>(e->Find("node")->number), w.node);
    EXPECT_EQ(static_cast<uint64_t>(e->Find("lo")->number), w.lo);
    EXPECT_EQ(static_cast<uint64_t>(e->Find("hi")->number), w.hi);
    const obs::JsonValue* kind = e->Find("kind");
    ASSERT_NE(kind, nullptr);
    ASSERT_TRUE(kind->Is(obs::JsonValue::Type::kString));
    EXPECT_EQ(kind->str, check::ToString(w.kind));
    const obs::JsonValue* remote = e->Find("remote");
    ASSERT_NE(remote, nullptr);
    ASSERT_TRUE(remote->Is(obs::JsonValue::Type::kBool));
    EXPECT_EQ(remote->boolean, w.remote);
    const obs::JsonValue* pending = e->Find("pending");
    ASSERT_NE(pending, nullptr);
    ASSERT_TRUE(pending->Is(obs::JsonValue::Type::kBool));
    EXPECT_EQ(pending->boolean, w.pending);
    const obs::JsonValue* label = e->Find("label");
    ASSERT_NE(label, nullptr);
    EXPECT_TRUE(label->Is(obs::JsonValue::Type::kString));
  };
  check_endpoint(v.Find("a"), want.a);
  check_endpoint(v.Find("b"), want.b);
}

// A write lands in a region another client already freed.
TEST(CheckTest, UseAfterRfreeReportedOnce) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      auto buf = client.AllocBuffer(64);
      ASSERT_TRUE(buf.ok());
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("doomed", 64 << 10).ok());
        ASSERT_TRUE(client.NotifyInc("alloc").ok());
        ASSERT_TRUE(client.WaitNotify("mapped", 1).ok());
        ASSERT_TRUE(client.Rfree("doomed").ok());
        ASSERT_TRUE(client.NotifyInc("freed").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("alloc", 1).ok());
        auto region = client.Rmap("doomed");
        ASSERT_TRUE(region.ok());
        ASSERT_TRUE(client.NotifyInc("mapped").ok());
        ASSERT_TRUE(client.WaitNotify("freed", 1).ok());
        // The mapping still resolves to the old slabs; the bytes now
        // belong to nobody (or, worse, to the next allocation).
        std::memset(buf->begin(), 0x5C, 64);
        (void)(*region)->Write(0, buf->data);
      }
    });
  }
  cluster.sim().Run();

  EXPECT_EQ(CountType(checker, check::ViolationType::kUseAfterFree), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
}

// A local buffer is deregistered while an async write still reads it.
TEST(CheckTest, UseAfterDeregisterReportedOnce) {
  ClusterConfig cfg = TwoClientConfig();
  cfg.client_nodes = 1;
  check::Checker checker;
  TestCluster cluster(cfg);
  cluster.sim().AttachChecker(&checker);

  cluster.RunClient([](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("dereg", 64 << 10).ok());
    auto region = client.Rmap("dereg");
    ASSERT_TRUE(region.ok());
    std::vector<std::byte> buf(4096, std::byte{0x11});
    ASSERT_TRUE(client.RegisterBuffer(buf).ok());
    auto future = (*region)->WriteAsync(0, buf);
    ASSERT_TRUE(future.ok());
    // The NIC may still be streaming from `buf`; yanking the
    // registration out from under the in-flight WR is the bug.
    ASSERT_TRUE(client.UnregisterBuffer(buf).ok());
    (void)future->Wait();
  });

  EXPECT_EQ(CountType(checker, check::ViolationType::kUseAfterDereg), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
}

// Rgrow while a write to the region is still in flight: the master may
// re-stripe or append slabs while the WR is on the wire.
TEST(CheckTest, RgrowRacingInFlightWriteReportedOnce) {
  ClusterConfig cfg = TwoClientConfig();
  // A long flight time keeps the write un-acked while the other
  // client's Rgrow — posted one notify round-trip later — is already
  // being handled at the master.
  cfg.nic.base_latency = sim::Micros(25);
  check::Checker checker;
  TestCluster cluster(cfg);
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("growing", 1ULL << 20).ok());
        auto region = client.Rmap("growing");
        ASSERT_TRUE(region.ok());
        auto buf = client.AllocBuffer(512 << 10);
        ASSERT_TRUE(buf.ok());
        std::memset(buf->begin(), 0x33, buf->size());
        // Warm the data QP so the racing write below posts the instant
        // the notify reply lands instead of paying the CM handshake.
        ASSERT_TRUE(
            (*region)->Write(0, buf->data.subspan(0, 64)).ok());
        ASSERT_TRUE(client.NotifyInc("alloc").ok());
        // Posted the instant the notify reply lands: the half-megabyte
        // write is still serializing when client 1's Rgrow reaches the
        // master.
        auto future = (*region)->WriteAsync(0, buf->data);
        ASSERT_TRUE(future.ok());
        ASSERT_TRUE(future->Wait().ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("alloc", 1).ok());
        ASSERT_TRUE(client.Rgrow("growing", 2ULL << 20).ok());
      }
    });
  }
  cluster.sim().Run();

  EXPECT_EQ(CountType(checker, check::ViolationType::kGrowRace), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
}

// A remote writer invalidates bytes another client holds cached in
// epoch mode after writing them through: the cached copy silently
// diverges from remote memory until the next BumpEpoch.
TEST(CheckTest, EpochCacheModeViolationReportedOnce) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      auto buf = client.AllocBuffer(4096);
      ASSERT_TRUE(buf.ok());
      if (w == 0) {
        ASSERT_TRUE(client.Ralloc("epoch", 64 << 10).ok());
        ASSERT_TRUE(client.NotifyInc("alloc").ok());
        ASSERT_TRUE(client.WaitNotify("cached", 1).ok());
        auto region = client.Rmap("epoch");
        ASSERT_TRUE(region.ok());
        // Ordered after client 1's accesses (no race), but stomping
        // bytes client 1 wrote through its epoch cache.
        std::memset(buf->begin(), 0x66, 128);
        ASSERT_TRUE(
            (*region)->Write(0, std::span<const std::byte>(buf->begin(), 128))
                .ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("alloc", 1).ok());
        auto region = client.Rmap(
            "epoch", RmapOptions{.cache_mode = cache::CacheMode::kEpoch});
        ASSERT_TRUE(region.ok());
        // Fill page 0, then write through it so the frame carries bytes
        // this client believes it authored.
        ASSERT_TRUE((*region)->Read(0, buf->data).ok());
        std::memset(buf->begin(), 0x55, 128);
        ASSERT_TRUE(
            (*region)->Write(0, std::span<const std::byte>(buf->begin(), 128))
                .ok());
        ASSERT_TRUE(client.NotifyInc("cached").ok());
      }
    });
  }
  cluster.sim().Run();

  EXPECT_EQ(CountType(checker, check::ViolationType::kCacheMode), 1u);
  EXPECT_EQ(checker.violations().size(), 1u);
}

// ------------------------------------------------- meta-properties ----

// E4-style distributed PageRank; returns the final virtual time.
uint64_t RunPageRank(check::Checker* checker) {
  carafe::Graph g = carafe::UniformRandomGraph(1 << 8, 4.0, 4);
  constexpr uint32_t kWorkers = 2;
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.client_nodes = kWorkers;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  TestCluster cluster(cfg);
  if (checker != nullptr) cluster.sim().AttachChecker(checker);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(carafe::UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      carafe::Worker worker(client, "g",
                            carafe::WorkerConfig{w, kWorkers, "pr"});
      ASSERT_TRUE(worker.Init().ok());
      ASSERT_TRUE(worker.PageRank({.iterations = 5}).ok());
    });
  }
  cluster.sim().Run();
  return static_cast<uint64_t>(cluster.sim().NowNanos());
}

// rcheck observes the simulation; it must never steer it. The same
// workload runs to the same final virtual time, bit for bit, with the
// checker off and on — and the clean workload reports nothing.
TEST(CheckProbeEffectTest, PageRankVirtualTimeIdenticalUnderRcheck) {
  const uint64_t off = RunPageRank(nullptr);
  ASSERT_GT(off, 0u);

  check::Checker checker;
  EXPECT_EQ(RunPageRank(&checker), off);
  EXPECT_TRUE(checker.violations().empty());
}

// E9-style KV workload — concurrent writers on one table, slot cache
// on — is data-race-free by construction (seqlock + CAS lock), so the
// checker must stay silent.
TEST(CheckFalsePositiveTest, KvWorkloadReportsNothing) {
  check::Checker checker;
  TestCluster cluster(TwoClientConfig());
  cluster.sim().AttachChecker(&checker);

  for (uint32_t w = 0; w < 2; ++w) {
    cluster.SpawnClient(w, [w](RStoreClient& client) {
      std::unique_ptr<kv::KvStore> store;
      kv::KvOptions options;
      options.buckets = 64;
      options.slot_bytes = 256;
      options.max_probe = 8;
      options.cache_slots = 16;
      if (w == 0) {
        auto created = kv::KvStore::Create(client, "table", options);
        ASSERT_TRUE(created.ok());
        store = std::move(*created);
        ASSERT_TRUE(client.NotifyInc("table-up").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("table-up", 1).ok());
        auto opened = kv::KvStore::Open(client, "table", 16);
        ASSERT_TRUE(opened.ok());
        store = std::move(*opened);
      }
      // Both clients hammer the same keys: seqlock retries and CAS
      // contention galore, but no actual race.
      for (int round = 0; round < 8; ++round) {
        for (int k = 0; k < 4; ++k) {
          const std::string key = "key" + std::to_string(k);
          std::vector<std::byte> value(32, std::byte{static_cast<uint8_t>(
                                               w * 16 + round)});
          Status put = store->Put(key, value);
          ASSERT_TRUE(put.ok() || put.code() == ErrorCode::kAborted);
          auto got = store->Get(key);
          ASSERT_TRUE(got.ok() || got.code() == ErrorCode::kNotFound);
        }
      }
    });
  }
  cluster.sim().Run();

  EXPECT_TRUE(checker.violations().empty());
}

}  // namespace
}  // namespace rstore
