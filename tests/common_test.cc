// Unit tests for src/common: Status/Result, Rng determinism and
// distribution sanity, statistics, and formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace rstore {
namespace {

// ---------------------------------------------------------------- Status --
TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s(ErrorCode::kNotFound, "region 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "region 'x'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: region 'x'");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ToString(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status().code(), ErrorCode::kOk);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(ErrorCode::kOutOfRange, "offset past end");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ------------------------------------------------------------------- Rng --
TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, NextBelowCoversSmallRangeUniformly) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, FillWritesAllBytes) {
  Rng rng(3);
  std::vector<unsigned char> buf(37, 0);
  rng.Fill(buf.data(), buf.size());
  // Chance of any byte staying zero is small but nonzero; count zeros.
  int zeros = static_cast<int>(std::count(buf.begin(), buf.end(), 0));
  EXPECT_LT(zeros, 5);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  Rng parent2(42);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.Next(), child2.Next());
  // Child stream differs from parent stream.
  Rng p(42);
  (void)p.Next();  // advance past the fork draw
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (p.Next() == child.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, StableHashIsStable) {
  EXPECT_EQ(StableHash64("rstore"), StableHash64("rstore"));
  EXPECT_NE(StableHash64("rstore"), StableHash64("rstorf"));
  EXPECT_NE(StableHash64(""), StableHash64("a"));
}

// ----------------------------------------------------------------- Stats --
TEST(SummaryStatsTest, Empty) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, KnownMoments) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(LatencyHistogramTest, QuantilesApproximateTruth) {
  LatencyHistogram h;
  Rng rng(17);
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = 100 + rng.NextBelow(100000);
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const uint64_t truth = values[static_cast<size_t>(q * (values.size() - 1))];
    const uint64_t approx = h.Quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(truth),
                static_cast<double>(truth) * 0.08)
        << "q=" << q;
  }
  EXPECT_EQ(h.min(), values.front());
  EXPECT_EQ(h.max(), values.back());
}

TEST(LatencyHistogramTest, MergeEqualsCombinedStream) {
  LatencyHistogram a, b, both;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = 1 + rng.NextBelow(1u << 20);
    ((i % 2) ? a : b).Add(v);
    both.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  EXPECT_EQ(a.Quantile(0.5), both.Quantile(0.5));
  EXPECT_EQ(a.Quantile(0.99), both.Quantile(0.99));
}

TEST(LatencyHistogramTest, MergeAcrossGrowthFactorsPreservesMoments) {
  LatencyHistogram fine(1.02), coarse(1.5);
  Rng rng(41);
  std::vector<uint64_t> values;
  for (int i = 0; i < 4000; ++i) {
    uint64_t v = 10 + rng.NextBelow(1u << 18);
    values.push_back(v);
    ((i % 2) ? fine : coarse).Add(v);
  }
  std::sort(values.begin(), values.end());
  const uint64_t n = values.size();
  double sum = 0;
  for (uint64_t v : values) sum += static_cast<double>(v);

  fine.Merge(coarse);
  // Count, extremes, and mean survive re-bucketing exactly.
  EXPECT_EQ(fine.count(), n);
  EXPECT_EQ(fine.min(), values.front());
  EXPECT_EQ(fine.max(), values.back());
  EXPECT_NEAR(fine.mean(), sum / static_cast<double>(n),
              sum / static_cast<double>(n) * 1e-12);
  // Quantiles stay within the coarser histogram's relative error band.
  for (double q : {0.5, 0.9, 0.99}) {
    const uint64_t truth = values[static_cast<size_t>(q * (n - 1))];
    EXPECT_NEAR(static_cast<double>(fine.Quantile(q)),
                static_cast<double>(truth),
                static_cast<double>(truth) * 0.5)
        << "q=" << q;
  }
}

TEST(LatencyHistogramTest, QuantileInterpolatesWithinBucket) {
  // One coarse bucket ([1024, 4096) at growth 4) holding a uniform
  // spread: without in-bucket interpolation every quantile would
  // collapse to one point.
  LatencyHistogram h(4.0);
  for (uint64_t v = 1024; v < 4096; v += 3) h.Add(v);
  const uint64_t p10 = h.Quantile(0.1);
  const uint64_t p50 = h.Quantile(0.5);
  const uint64_t p90 = h.Quantile(0.9);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p90);
  // Interpolated results track the uniform spread, not the bucket edge.
  EXPECT_NEAR(static_cast<double>(p50), 2560.0, 320.0);
  // All results stay inside the observed range.
  EXPECT_GE(p10, h.min());
  EXPECT_LE(p90, h.max());
  // A single-sample histogram pins every quantile to that sample.
  LatencyHistogram one(4.0);
  one.Add(777);
  EXPECT_EQ(one.Quantile(0.0), 777u);
  EXPECT_EQ(one.Quantile(0.5), 777u);
  EXPECT_EQ(one.Quantile(1.0), 777u);
}

// Far-tail accuracy: p999 and p9999 of a heavy-tailed stream must land
// within one bucket of the exact order statistic — i.e. within the
// histogram's growth factor relative error. The fan-in experiment (E13)
// reports p999 under coordinated-omission-safe timing, so tail fidelity
// of the histogram itself has to be pinned.
TEST(LatencyHistogramTest, FarTailQuantilesWithinOneBucket) {
  LatencyHistogram h;
  Rng rng(99);
  std::vector<uint64_t> values;
  values.reserve(200000);
  for (int i = 0; i < 200000; ++i) {
    // Log-uniform spread over [1us, ~1s): exercises many buckets and
    // puts real mass in the far tail.
    const double u = rng.NextDouble();
    const uint64_t v =
        static_cast<uint64_t>(1000.0 * std::pow(1.0e6, u));
    values.push_back(v);
    h.Add(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.999, 0.9999}) {
    const uint64_t truth = values[static_cast<size_t>(q * (values.size() - 1))];
    const double approx = static_cast<double>(h.Quantile(q));
    // One bucket of slack on either side of the exact value.
    EXPECT_GE(approx, static_cast<double>(truth) / h.growth()) << "q=" << q;
    EXPECT_LE(approx, static_cast<double>(truth) * h.growth()) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}


TEST(ZipfTest, DistributionIsSkewedAndComplete) {
  ZipfGenerator zipf(100, 0.99, 7);
  std::vector<int> counts(100, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const uint64_t k = zipf.Next();
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  // Head dominates: item 0 drawn far more than item 50.
  EXPECT_GT(counts[0], 10 * std::max(counts[50], 1));
  // Monotone-ish head.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  // Theoretical head mass for theta=0.99, n=100 is ~19%.
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.19, 0.03);
}

TEST(ZipfTest, DeterministicPerSeed) {
  ZipfGenerator a(64, 0.99, 3), b(64, 0.99, 3), c(64, 0.99, 4);
  bool all_same = true;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.Next();
    EXPECT_EQ(x, b.Next());
    all_same = all_same && (x == c.Next());
  }
  EXPECT_FALSE(all_same);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(10, 0.0, 9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Next()];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

// Goodness of fit against the analytic Zipf pmf across the skew range the
// load engine exposes (--skew): Pearson chi-square over n=50 categories.
// With fixed seeds the statistic is deterministic; the bound is the
// chi-square 99.9th percentile for 49 degrees of freedom (~85.4) with
// headroom, so it fails only if the sampler's distribution is wrong, not
// from unlucky draws.
TEST(ZipfTest, ChiSquareMatchesAnalyticPmf) {
  constexpr uint64_t kN = 50;
  constexpr int kDraws = 200000;
  for (double theta : {0.5, 0.99, 1.2}) {
    double harmonic = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      harmonic += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    }
    ZipfGenerator zipf(kN, theta, 1234);
    std::vector<int> counts(kN, 0);
    for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next()];
    double chi2 = 0;
    for (uint64_t i = 0; i < kN; ++i) {
      const double expected =
          kDraws / (std::pow(static_cast<double>(i + 1), theta) * harmonic);
      const double d = counts[i] - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 100.0) << "theta=" << theta;
  }
}

// Pins the exact first draws for a fixed seed. The E13 fan-in benchmark's
// bit-identical-across-host-threads guarantee rests on every stochastic
// input being a pure function of the seed; a change to the sampler's
// consumption of Rng bits would silently invalidate recorded baselines.
TEST(ZipfTest, FirstDrawsArePinnedForSeed42) {
  ZipfGenerator zipf(1024, 0.99, 42);
  const uint64_t expected[16] = {0,   9, 97,  592, 964, 190, 131, 343,
                                 179, 47, 99, 4,   239, 6,   123, 420};
  for (uint64_t e : expected) EXPECT_EQ(zipf.Next(), e);
}

// ------------------------------------------------------------- Formatting --
TEST(FormatTest, Bytes) {
  EXPECT_EQ(FormatBytes(17), "17 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KiB");
  EXPECT_EQ(FormatBytes(3ULL << 20), "3.0 MiB");
  EXPECT_EQ(FormatBytes(5ULL << 30), "5.0 GiB");
}

TEST(FormatTest, Duration) {
  EXPECT_EQ(FormatDuration(999), "999 ns");
  EXPECT_EQ(FormatDuration(1500), "1.50 us");
  EXPECT_EQ(FormatDuration(2'500'000), "2.50 ms");
  EXPECT_EQ(FormatDuration(31'700'000'000ULL), "31.70 s");
}

TEST(FormatTest, Gbps) { EXPECT_EQ(FormatGbps(705e9), "705.00 Gb/s"); }

}  // namespace
}  // namespace rstore
