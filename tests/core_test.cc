// Tests for the RStore core: master allocation/mapping/leases, memory
// server registration, and the client's memory-like API (ralloc/rmap/
// read/write/rfree, async IO, atomics, notifications, mapping cache,
// failure handling).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"

namespace rstore::core {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Nanos;
using sim::Seconds;

ClusterConfig SmallCluster() {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 2;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;  // 1 MiB slabs: 16 per server
  return cfg;
}

// Fills a span deterministically from a seed.
void FillPattern(std::span<std::byte> buf, uint64_t seed) {
  Rng rng(seed);
  rng.Fill(buf.data(), buf.size());
}

// ------------------------------------------------------------ bootstrap --
TEST(ClusterTest, ServersRegisterAndReportCapacity) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto stat = client.Stat();
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->live_servers, 4u);
    EXPECT_EQ(stat->total_bytes, 4 * (16ULL << 20));
    EXPECT_EQ(stat->free_bytes, stat->total_bytes);
    EXPECT_EQ(stat->regions, 0u);
  });
  EXPECT_EQ(cluster.master().live_servers(), 4u);
}

// ----------------------------------------------------------- allocation --
TEST(AllocTest, AllocCreatesStripedRegion) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("graph", 4ULL << 20).ok());  // 4 slabs
    auto region = client.Rmap("graph");
    ASSERT_TRUE(region.ok()) << region.status();
    const RegionDesc& desc = (*region)->desc();
    EXPECT_EQ(desc.size, 4ULL << 20);
    EXPECT_EQ(desc.slab_size, 1ULL << 20);
    ASSERT_EQ(desc.slabs.size(), 4u);
    // Round-robin striping: 4 slabs over 4 servers → all distinct.
    std::set<uint32_t> nodes;
    for (const auto& slab : desc.slabs) nodes.insert(slab.server_node);
    EXPECT_EQ(nodes.size(), 4u);
  });
}

TEST(AllocTest, SubSlabAllocationRoundsUp) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("tiny", 100).ok());
    auto region = client.Rmap("tiny");
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->desc().slabs.size(), 1u);
    EXPECT_EQ((*region)->size(), 100u);
    auto stat = client.Stat();
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->free_bytes, stat->total_bytes - (1ULL << 20));
  });
}

TEST(AllocTest, DuplicateNameRejected) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("dup", 1024).ok());
    auto again = client.Ralloc("dup", 1024);
    EXPECT_EQ(again.code(), ErrorCode::kAlreadyExists);
  });
}

TEST(AllocTest, ExhaustionReturnsOutOfMemory) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    // Cluster holds 64 MiB total; ask for more.
    auto r = client.Ralloc("huge", 65ULL << 20);
    EXPECT_EQ(r.code(), ErrorCode::kOutOfMemory);
    // A fillable region still works afterwards.
    EXPECT_TRUE(client.Ralloc("fits", 64ULL << 20).ok());
    // And now truly nothing is left.
    EXPECT_EQ(client.Ralloc("one-more", 1).code(), ErrorCode::kOutOfMemory);
  });
}

TEST(AllocTest, FreeReturnsSlabsForReuse) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("a", 64ULL << 20).ok());
    EXPECT_EQ(client.Ralloc("b", 1).code(), ErrorCode::kOutOfMemory);
    ASSERT_TRUE(client.Rfree("a").ok());
    EXPECT_TRUE(client.Ralloc("b", 64ULL << 20).ok());
  });
}

TEST(AllocTest, MapUnknownRegionIsNotFound) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    EXPECT_EQ(client.Rmap("ghost").code(), ErrorCode::kNotFound);
    EXPECT_EQ(client.Rfree("ghost").code(), ErrorCode::kNotFound);
  });
}

TEST(AllocTest, LargeRegionBalancesAcrossServers) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("big", 32ULL << 20).ok());  // 32 slabs
    auto region = client.Rmap("big");
    ASSERT_TRUE(region.ok());
    std::map<uint32_t, int> per_server;
    for (const auto& slab : (*region)->desc().slabs) {
      ++per_server[slab.server_node];
    }
    ASSERT_EQ(per_server.size(), 4u);
    for (const auto& [node, count] : per_server) EXPECT_EQ(count, 8);
    // Consecutive slabs land on different servers (bandwidth striping).
    const auto& slabs = (*region)->desc().slabs;
    for (size_t i = 0; i + 1 < slabs.size(); ++i) {
      EXPECT_NE(slabs[i].server_node, slabs[i + 1].server_node);
    }
  });
}

// -------------------------------------------------------------- data IO --
TEST(IoTest, WriteThenReadRoundTrips) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 2ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 42);
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());

    auto check = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(check.ok());
    ASSERT_TRUE((*region)->Read(0, check->data).ok());
    EXPECT_EQ(std::memcmp(buf->begin(), check->begin(), buf->size()), 0);
  });
}

TEST(IoTest, IoSpanningMultipleSlabsAndServers) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    // 3 MiB write starting mid-slab: touches all four slabs.
    const size_t n = 3ULL << 20;
    auto src = client.AllocBuffer(n);
    auto dst = client.AllocBuffer(n);
    ASSERT_TRUE(src.ok() && dst.ok());
    FillPattern(src->data, 7);
    const uint64_t offset = (1ULL << 19);  // 512 KiB
    ASSERT_TRUE((*region)->Write(offset, src->data).ok());
    ASSERT_TRUE((*region)->Read(offset, dst->data).ok());
    EXPECT_EQ(std::memcmp(src->begin(), dst->begin(), n), 0);
  });
}

TEST(IoTest, SmallUnalignedAccesses) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
      const uint64_t off = rng.NextBelow((1ULL << 20) - 257);
      const uint64_t len = 1 + rng.NextBelow(256);
      std::span<std::byte> chunk(buf->begin(), len);
      FillPattern(chunk, off);
      ASSERT_TRUE((*region)->Write(off, chunk).ok());
      std::span<std::byte> back(buf->begin() + 2048, len);
      ASSERT_TRUE((*region)->Read(off, back).ok());
      ASSERT_EQ(std::memcmp(chunk.data(), back.data(), len), 0)
          << "off=" << off << " len=" << len;
    }
  });
}

TEST(IoTest, ZeroLengthIoIsNoOp) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1024).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    EXPECT_TRUE((*region)->Read(0, {}).ok());
    EXPECT_TRUE((*region)->Write(1024, {}).ok());
    EXPECT_EQ(client.bytes_read(), 0u);
  });
}

TEST(IoTest, OutOfRangeIoRejected) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1000).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(100);
    ASSERT_TRUE(buf.ok());
    EXPECT_EQ((*region)->Read(950, buf->data).code(),
              ErrorCode::kOutOfRange);
    EXPECT_EQ((*region)->Write(1001, buf->data).code(),
              ErrorCode::kOutOfRange);
    // Boundary case: exactly at the end is fine.
    EXPECT_TRUE((*region)->Write(900, buf->data).ok());
  });
}

TEST(IoTest, UnregisteredBufferRejected) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4096).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    std::vector<std::byte> unpinned(256);
    EXPECT_EQ((*region)->Write(0, unpinned).code(),
              ErrorCode::kInvalidArgument);
  });
}

TEST(IoTest, RegisterBufferAllowsUserMemory) {
  TestCluster cluster(SmallCluster());
  std::vector<std::byte> user(8192);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 8192).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE(client.RegisterBuffer(user).ok());
    FillPattern(user, 9);
    EXPECT_TRUE((*region)->Write(0, user).ok());
    // A sub-span of the registered buffer works too.
    EXPECT_TRUE(
        (*region)->Read(0, std::span<std::byte>(user.data() + 100, 50)).ok());
  });
}

TEST(IoTest, AsyncIoOverlapsLatencyBoundAccesses) {
  // Small scattered reads are latency-dominated; issuing them overlapped
  // hides the round trips (large transfers are NIC-bandwidth-bound either
  // way, so the async win shows on small IO).
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 8ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    constexpr size_t kChunk = 4096;
    constexpr size_t kOps = 64;
    auto buf = client.AllocBuffer(kOps * kChunk);
    ASSERT_TRUE(buf.ok());

    // Warm the data-path connections (setup is control-path work and is
    // measured separately in E2).
    for (uint64_t off = 0; off < (8ULL << 20); off += 1ULL << 20) {
      ASSERT_TRUE(
          (*region)->Read(off, std::span<std::byte>(buf->begin(), 8)).ok());
    }

    const Nanos t0 = sim::Now();
    std::vector<IoFuture> futures;
    for (size_t i = 0; i < kOps; ++i) {
      auto f = (*region)->ReadAsync(
          i * (1ULL << 17),
          std::span<std::byte>(buf->begin() + i * kChunk, kChunk));
      ASSERT_TRUE(f.ok());
      futures.push_back(std::move(*f));
    }
    for (auto& f : futures) ASSERT_TRUE(f.Wait().ok());
    const Nanos parallel = sim::Now() - t0;

    const Nanos t1 = sim::Now();
    for (size_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(
          (*region)
              ->Read(i * (1ULL << 17),
                     std::span<std::byte>(buf->begin() + i * kChunk, kChunk))
              .ok());
    }
    const Nanos serial = sim::Now() - t1;
    EXPECT_LT(parallel, serial / 2);
  });
}

TEST(IoTest, WaitIsIdempotentAndEmptyFutureFails) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4096).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(128);
    ASSERT_TRUE(buf.ok());
    auto f = (*region)->WriteAsync(0, buf->data);
    ASSERT_TRUE(f.ok());
    EXPECT_TRUE(f->Wait().ok());
    EXPECT_TRUE(f->Wait().ok());  // second wait: still OK
    IoFuture empty;
    EXPECT_EQ(empty.Wait().code(), ErrorCode::kInvalidArgument);
  });
}

TEST(IoTest, DataLandsOnTheRightServer) {
  // White-box: write a 1 MiB-aligned slab and verify the bytes are in
  // that server's arena (the one the slab table points to).
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 2ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(1 << 20);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 77);
    ASSERT_TRUE((*region)->Write(1ULL << 20, buf->data).ok());  // slab 1

    const SlabLocation& slab = (*region)->desc().slabs[1];
    for (size_t s = 0; s < cluster.server_count(); ++s) {
      if (cluster.server_node(s).id() == slab.server_node) {
        const MemoryServer& server = cluster.server(s);
        const auto* arena_bytes = server.arena();
        const uint64_t arena_base =
            reinterpret_cast<uint64_t>(arena_bytes);
        const std::byte* where =
            arena_bytes + (slab.remote_addr - arena_base);
        EXPECT_EQ(std::memcmp(where, buf->begin(), 1 << 20), 0);
        return;
      }
    }
    FAIL() << "slab server not found";
  });
}

TEST(IoTest, StatsCountBytesAndOps) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(1000);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    EXPECT_EQ(client.bytes_written(), 1000u);
    EXPECT_EQ(client.bytes_read(), 2000u);
    EXPECT_EQ(client.data_ops(), 3u);
  });
}

// -------------------------------------------------------- mapping cache --
TEST(MapCacheTest, SecondRmapIsCachedAndFree) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    const uint64_t calls_before_first = client.control_calls();
    auto first = client.Rmap("r");
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(client.control_calls(), calls_before_first + 1);

    const Nanos t0 = sim::Now();
    auto second = client.Rmap("r");
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(sim::Now(), t0);  // zero virtual time: pure cache hit
    EXPECT_EQ(client.control_calls(), calls_before_first + 1);
    EXPECT_EQ(*first, *second);  // same mapping object
    EXPECT_EQ(client.map_cache_hits(), 1u);
  });
}

TEST(MapCacheTest, FreshRmapRefetches) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    ASSERT_TRUE(client.Rmap("r").ok());
    const uint64_t calls = client.control_calls();
    ASSERT_TRUE(client.Rmap("r", false, /*fresh=*/true).ok());
    EXPECT_EQ(client.control_calls(), calls + 1);
  });
}

TEST(MapCacheTest, RunmapDropsCache) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    ASSERT_TRUE(client.Rmap("r").ok());
    ASSERT_TRUE(client.Runmap("r").ok());
    EXPECT_EQ(client.Runmap("r").code(), ErrorCode::kNotFound);
    const uint64_t calls = client.control_calls();
    ASSERT_TRUE(client.Rmap("r").ok());  // re-fetches
    EXPECT_EQ(client.control_calls(), calls + 1);
  });
}

// --------------------------------------------------------------- atomics --
TEST(AtomicTest, FetchAddAcrossClients) {
  TestCluster cluster(SmallCluster());
  // Atomic: the two clients finish on different partitions, possibly on
  // concurrent host threads under the partitioned scheduler.
  std::atomic<int> finished{0};
  for (size_t c = 0; c < 2; ++c) {
    cluster.SpawnClient(c, [&finished, c](RStoreClient& client) {
      if (c == 0) {
        ASSERT_TRUE(client.Ralloc("counter", 4096).ok());
        ASSERT_TRUE(client.NotifyInc("ready").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
      }
      auto region = client.Rmap("counter");
      ASSERT_TRUE(region.ok());
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE((*region)->FetchAdd(0, 1).ok());
      }
      ASSERT_TRUE(client.NotifyInc("done").ok());
      auto total = client.WaitNotify("done", 2);
      ASSERT_TRUE(total.ok());
      auto v = (*region)->FetchAdd(0, 0);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, 200u);
      ++finished;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(finished, 2);
}

TEST(AtomicTest, CompareSwapElectsSingleWinner) {
  TestCluster cluster(SmallCluster());
  std::atomic<int> winners{0};
  std::atomic<int> finished{0};
  for (size_t c = 0; c < 2; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      if (c == 0) {
        ASSERT_TRUE(client.Ralloc("lock", 4096).ok());
        ASSERT_TRUE(client.NotifyInc("ready").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
      }
      auto region = client.Rmap("lock");
      ASSERT_TRUE(region.ok());
      auto old = (*region)->CompareSwap(0, 0, client.device().node_id());
      ASSERT_TRUE(old.ok());
      if (*old == 0) ++winners;
      ++finished;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(finished, 2);
  EXPECT_EQ(winners, 1);
}

TEST(AtomicTest, MisalignedAtomicRejectedClientSide) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4096).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->FetchAdd(3, 1).code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ((*region)->FetchAdd(4092, 1).code(),
              ErrorCode::kInvalidArgument);  // 8 bytes past end
  });
}

// -------------------------------------------------------- notifications --
TEST(NotifyTest, WaitBlocksUntilTarget) {
  TestCluster cluster(SmallCluster());
  Nanos waiter_done = 0;
  Nanos inc_time = 0;
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    auto v = client.WaitNotify("chan", 3);
    ASSERT_TRUE(v.ok());
    EXPECT_GE(*v, 3u);
    waiter_done = sim::Now();
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    for (int i = 0; i < 3; ++i) {
      sim::Sleep(Millis(10));
      ASSERT_TRUE(client.NotifyInc("chan").ok());
    }
    inc_time = sim::Now();
  });
  cluster.sim().Run();
  EXPECT_GT(waiter_done, 0u);
  EXPECT_GE(waiter_done, inc_time);
}

TEST(NotifyTest, BarrierBetweenManyClients) {
  ClusterConfig cfg = SmallCluster();
  cfg.client_nodes = 5;
  TestCluster cluster(cfg);
  std::vector<Nanos> release(5, 0);
  for (size_t c = 0; c < 5; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      sim::Sleep(Millis(static_cast<double>(c * 7)));  // stagger arrivals
      ASSERT_TRUE(client.NotifyInc("barrier").ok());
      ASSERT_TRUE(client.WaitNotify("barrier", 5).ok());
      release[c] = sim::Now();
    });
  }
  cluster.sim().Run();
  // Nobody is released before the last arrival (t = 28 ms).
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_GE(release[c], Millis(28)) << "client " << c;
  }
}

// ------------------------------------------------------ failure handling --
TEST(FailureTest, ServerDeathDegradesItsRegions) {
  ClusterConfig cfg = SmallCluster();
  cfg.master.lease_timeout = Millis(120);
  cfg.master.sweep_interval = Millis(30);
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("wide", 4ULL << 20).ok());  // all 4 servers
    ASSERT_TRUE(client.Rmap("wide").ok());

    // Kill the server hosting slab 0.
    auto region = client.Rmap("wide");
    const uint32_t victim = (*region)->desc().slabs[0].server_node;
    sim::CurrentNode().sim().KillNode(victim);
    sim::Sleep(Millis(400));  // lease expires

    auto fresh = client.Rmap("wide", false, /*fresh=*/true);
    EXPECT_EQ(fresh.code(), ErrorCode::kUnavailable);  // degraded
    auto degraded_ok = client.Rmap("wide", /*allow_degraded=*/true, true);
    EXPECT_TRUE(degraded_ok.ok());
    // Allocation on remaining servers still works.
    EXPECT_TRUE(client.Ralloc("after", 1ULL << 20).ok());
  });
  EXPECT_EQ(cluster.master().live_servers(), 3u);
}

TEST(FailureTest, IoToDeadServerFailsAndReportsUnavailable) {
  ClusterConfig cfg = SmallCluster();
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());

    const uint32_t victim = (*region)->desc().slabs[0].server_node;
    sim::CurrentNode().sim().KillNode(victim);
    sim::Sleep(Millis(10));
    auto st = (*region)->Write(0, buf->data);
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::kUnavailable);
  });
}

TEST(FailureTest, StaleMappingAfterFreeStillWithinArenaIsClientsProblem) {
  // RStore's trust model: rfree invalidates the master's metadata but
  // cannot recall rkeys already handed out. A *fresh* map fails; the data
  // path of a stale mapping is undefined but must not crash the store.
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE(client.Rfree("r").ok());
    EXPECT_EQ(client.Rmap("r").code(), ErrorCode::kNotFound);
  });
}

TEST(FailureTest, MasterRestartIsNotModeledButDeathFailsControlPath) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1024).ok());
    sim::CurrentNode().sim().KillNode(cluster.master_node_id());
    sim::Sleep(Millis(10));
    EXPECT_FALSE(client.Ralloc("r2", 1024).ok());
  });
}

TEST(FailureTest, HeartbeatKeepsLeaseAliveIndefinitely) {
  ClusterConfig cfg = SmallCluster();
  cfg.master.lease_timeout = Millis(100);
  cfg.master.sweep_interval = Millis(20);
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    sim::Sleep(Seconds(2));  // many lease periods
    auto stat = client.Stat();
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->live_servers, 4u);
  });
}

// ------------------------------------------------- multi-client sharing --
TEST(SharingTest, ProducerConsumerThroughSharedRegion) {
  TestCluster cluster(SmallCluster());
  std::string received;
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("mailbox", 4096).ok());
    auto region = client.Rmap("mailbox");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64);
    ASSERT_TRUE(buf.ok());
    const char msg[] = "hello from producer";
    std::memcpy(buf->begin(), msg, sizeof(msg));
    ASSERT_TRUE(
        (*region)->Write(0, std::span<std::byte>(buf->begin(), sizeof(msg)))
            .ok());
    ASSERT_TRUE(client.NotifyInc("mail").ok());
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("mail", 1).ok());
    auto region = client.Rmap("mailbox");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    received = reinterpret_cast<const char*>(buf->begin());
  });
  cluster.sim().Run();
  EXPECT_EQ(received, "hello from producer");
}

TEST(SharingTest, ConcurrentClientsReadDisjointStripes) {
  ClusterConfig cfg = SmallCluster();
  cfg.client_nodes = 4;
  TestCluster cluster(cfg);
  std::atomic<int> done{0};
  for (size_t c = 0; c < 4; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      if (c == 0) {
        ASSERT_TRUE(client.Ralloc("shared", 4ULL << 20).ok());
        auto region = client.Rmap("shared");
        ASSERT_TRUE(region.ok());
        auto buf = client.AllocBuffer(4ULL << 20);
        ASSERT_TRUE(buf.ok());
        FillPattern(buf->data, 1234);
        ASSERT_TRUE((*region)->Write(0, buf->data).ok());
        ASSERT_TRUE(client.NotifyInc("filled").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("filled", 1).ok());
      }
      auto region = client.Rmap("shared");
      ASSERT_TRUE(region.ok());
      auto mine = client.AllocBuffer(1ULL << 20);
      ASSERT_TRUE(mine.ok());
      ASSERT_TRUE((*region)->Read(c * (1ULL << 20), mine->data).ok());
      // Verify against the generator: reproduce the full pattern.
      std::vector<std::byte> full(4ULL << 20);
      FillPattern(full, 1234);
      EXPECT_EQ(std::memcmp(mine->begin(), full.data() + c * (1ULL << 20),
                            1ULL << 20),
                0);
      ++done;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(done, 4);
}



// ---------------------------------------------------------------- rgrow --
TEST(GrowTest, GrowAddsSlabsAndPreservesData) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 2ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(2ULL << 20);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 31);
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());

    // IO past the end fails before the grow...
    auto tail = client.AllocBuffer(4096);
    ASSERT_TRUE(tail.ok());
    EXPECT_EQ((*region)->Write(3ULL << 20, tail->data).code(),
              ErrorCode::kOutOfRange);

    ASSERT_TRUE(client.Rgrow("r", 6ULL << 20).ok());
    // ...and the SAME mapping object works after (refreshed in place).
    EXPECT_EQ((*region)->size(), 6ULL << 20);
    EXPECT_EQ((*region)->desc().slabs.size(), 6u);
    EXPECT_TRUE((*region)->Write(3ULL << 20, tail->data).ok());
    EXPECT_TRUE((*region)->Write((6ULL << 20) - 4096, tail->data).ok());

    // Old data intact.
    auto back = client.AllocBuffer(2ULL << 20);
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE((*region)->Read(0, back->data).ok());
    EXPECT_EQ(std::memcmp(back->begin(), buf->begin(), buf->size()), 0);
  });
}

TEST(GrowTest, GrowValidation) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20).ok());
    EXPECT_EQ(client.Rgrow("r", 1ULL << 20).code(),
              ErrorCode::kInvalidArgument);  // shrink
    EXPECT_EQ(client.Rgrow("ghost", 1ULL << 20).code(),
              ErrorCode::kNotFound);
    EXPECT_EQ(client.Rgrow("r", 1ULL << 40).code(),
              ErrorCode::kOutOfMemory);
    ASSERT_TRUE(client.Ralloc("repl", 1ULL << 20, 2).ok());
    EXPECT_EQ(client.Rgrow("repl", 2ULL << 20).code(),
              ErrorCode::kInvalidArgument);
    // Growing within the same slab count (rounding) still updates size.
    ASSERT_TRUE(client.Ralloc("half", 100).ok());
    ASSERT_TRUE(client.Rgrow("half", 1000).ok());
    auto region = client.Rmap("half");
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->size(), 1000u);
    EXPECT_EQ((*region)->desc().slabs.size(), 1u);
  });
}

TEST(GrowTest, OtherClientsSeeGrowthOnFreshMap) {
  TestCluster cluster(SmallCluster());
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    ASSERT_TRUE(client.NotifyInc("made").ok());
    ASSERT_TRUE(client.WaitNotify("mapped", 1).ok());
    ASSERT_TRUE(client.Rgrow("r", 4ULL << 20).ok());
    ASSERT_TRUE(client.NotifyInc("grown").ok());
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("made", 1).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->size(), 1ULL << 20);
    ASSERT_TRUE(client.NotifyInc("mapped").ok());
    ASSERT_TRUE(client.WaitNotify("grown", 1).ok());
    // Cached mapping is stale; fresh map sees the new size.
    auto fresh = client.Rmap("r", false, /*fresh=*/true);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ((*fresh)->size(), 4ULL << 20);
  });
  cluster.sim().Run();
}


// ------------------------------------------------------------ vectored --
TEST(VectoredIoTest, ReadVWriteVRoundTrip) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 61);

    // Scatter four 16 KiB segments over the region with one call.
    std::vector<IoVec> writes;
    for (int i = 0; i < 4; ++i) {
      writes.push_back(IoVec{static_cast<uint64_t>(i) * (1ULL << 20) + 123,
                             buf->begin() + i * (16 << 10), 16 << 10});
    }
    auto wf = (*region)->WriteV(writes);
    ASSERT_TRUE(wf.ok());
    ASSERT_TRUE(wf->Wait().ok());

    auto back = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(back.ok());
    std::vector<IoVec> reads;
    for (int i = 0; i < 4; ++i) {
      reads.push_back(IoVec{static_cast<uint64_t>(i) * (1ULL << 20) + 123,
                            back->begin() + i * (16 << 10), 16 << 10});
    }
    auto rf = (*region)->ReadV(reads);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rf->Wait().ok());
    EXPECT_EQ(std::memcmp(buf->begin(), back->begin(), 64 << 10), 0);
    EXPECT_EQ(client.data_ops(), 8u);  // one per segment
  });
}

TEST(VectoredIoTest, VectoredBeatsSequentialSmallIo) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(buf.ok());
    // Warm every data connection.
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          (*region)
              ->Read(static_cast<uint64_t>(i) << 20,
                     std::span<std::byte>(buf->begin(), 8))
              .ok());
    }
    std::vector<IoVec> segs;
    for (int i = 0; i < 32; ++i) {
      segs.push_back(IoVec{static_cast<uint64_t>(i) * (128 << 10),
                           buf->begin() + (i % 16) * 4096, 4096});
    }
    const Nanos t0 = sim::Now();
    auto f = (*region)->ReadV(segs);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(f->Wait().ok());
    const Nanos vectored = sim::Now() - t0;

    const Nanos t1 = sim::Now();
    for (const auto& seg : segs) {
      ASSERT_TRUE(
          (*region)
              ->Read(seg.offset, std::span<std::byte>(seg.local, seg.length))
              .ok());
    }
    const Nanos serial = sim::Now() - t1;
    EXPECT_LT(vectored, serial / 2);
  });
}

TEST(VectoredIoTest, BadSegmentFailsWholeCall) {
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(8192);
    ASSERT_TRUE(buf.ok());
    std::vector<IoVec> segs{
        IoVec{0, buf->begin(), 4096},
        IoVec{(1ULL << 20) - 100, buf->begin() + 4096, 4096},  // past end
    };
    auto f = (*region)->WriteV(segs);
    EXPECT_EQ(f.code(), ErrorCode::kOutOfRange);
  });
}

TEST(VectoredIoTest, CoalescedWriteThenBoundarySpanningReadVRoundTrips) {
  // A full-region write is fragmented per slab and coalesced into one
  // multi-SGE post per server (two slabs of this region live on each of
  // the four servers). Reading back with segments deliberately straddling
  // every slab boundary must reproduce the bytes exactly.
  TestCluster cluster(SmallCluster());
  cluster.RunClient([&](RStoreClient& client) {
    const uint64_t kRegion = 8ULL << 20;  // 8 slabs over 4 servers
    const uint64_t kSlab = 1ULL << 20;
    ASSERT_TRUE(client.Ralloc("r", kRegion).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(kRegion);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 7);
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());

    // One 8 KiB segment across each of the seven interior slab
    // boundaries, plus the region's first and last 4 KiB.
    auto back = client.AllocBuffer(kRegion);
    ASSERT_TRUE(back.ok());
    std::memset(back->begin(), 0xee, back->data.size());
    std::vector<IoVec> segs;
    for (uint64_t b = 1; b < 8; ++b) {
      const uint64_t off = b * kSlab - 4096;
      segs.push_back(IoVec{off, back->begin() + off, 8192});
    }
    segs.push_back(IoVec{0, back->begin(), 4096});
    segs.push_back(IoVec{kRegion - 4096, back->begin() + kRegion - 4096,
                         4096});
    auto rf = (*region)->ReadV(segs);
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rf->Wait().ok());
    for (const auto& seg : segs) {
      EXPECT_EQ(std::memcmp(buf->begin() + seg.offset, seg.local,
                            seg.length),
                0)
          << "mismatch in segment at offset " << seg.offset;
    }
  });
}

TEST(DeterminismTest, BatchedDataPathTimelineIsReproducible) {
  // Same-seed runs of a workload that exercises the coalesced multi-SGE
  // path, scattered vectored IO and atomics must agree on the complete
  // observable timeline: finish time, fabric byte totals and data-op
  // counts.
  struct Fingerprint {
    Nanos done_at = 0;
    uint64_t fabric_bytes = 0;
    uint64_t data_ops = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  auto run = [](uint64_t seed) {
    ClusterConfig cfg = SmallCluster();
    cfg.seed = seed;
    TestCluster cluster(cfg);
    Fingerprint fp;
    cluster.RunClient([&](RStoreClient& client) {
      ASSERT_TRUE(client.Ralloc("r", 8ULL << 20).ok());
      auto region = client.Rmap("r");
      ASSERT_TRUE(region.ok());
      auto buf = client.AllocBuffer(8ULL << 20);
      ASSERT_TRUE(buf.ok());
      FillPattern(buf->data, 5);
      std::vector<IoFuture> futures;
      for (int pass = 0; pass < 3; ++pass) {
        auto w = (*region)->WriteAsync(0, buf->data);
        ASSERT_TRUE(w.ok());
        futures.push_back(std::move(*w));
      }
      for (auto& f : futures) ASSERT_TRUE(f.Wait().ok());
      std::vector<IoVec> segs;
      for (int s = 0; s < 16; ++s) {
        segs.push_back(IoVec{static_cast<uint64_t>(s) * (512 << 10),
                             buf->begin() + s * 4096, 4096});
      }
      auto rv = (*region)->ReadV(segs);
      ASSERT_TRUE(rv.ok());
      ASSERT_TRUE(rv->Wait().ok());
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE((*region)->FetchAdd(0, 3).ok());
      }
      fp.done_at = sim::Now();
      fp.data_ops = client.data_ops();
    });
    fp.fabric_bytes = cluster.net().fabric().total_bytes();
    return fp;
  };
  const Fingerprint a = run(1234);
  const Fingerprint b = run(1234);
  EXPECT_EQ(a.done_at, b.done_at);
  EXPECT_EQ(a.fabric_bytes, b.fabric_bytes);
  EXPECT_EQ(a.data_ops, b.data_ops);
  EXPECT_GT(a.fabric_bytes, 0u);
}

// ------------------------------------------------------------ placement --
TEST(PlacementTest, PackConcentratesStripeSpreads) {
  auto servers_touched = [](PlacementPolicy policy) {
    ClusterConfig cfg = SmallCluster();
    cfg.master.placement = policy;
    TestCluster cluster(cfg);
    size_t distinct = 0;
    cluster.RunClient([&](RStoreClient& client) {
      ASSERT_TRUE(client.Ralloc("r", 8ULL << 20).ok());  // 8 slabs
      auto region = client.Rmap("r");
      ASSERT_TRUE(region.ok());
      std::set<uint32_t> nodes;
      for (const auto& slab : (*region)->desc().slabs) {
        nodes.insert(slab.server_node);
      }
      distinct = nodes.size();
    });
    return distinct;
  };
  EXPECT_EQ(servers_touched(PlacementPolicy::kStripe), 4u);
  // 8 slabs fit in one 16-slab server under kPack.
  EXPECT_EQ(servers_touched(PlacementPolicy::kPack), 1u);
}

TEST(PlacementTest, PackSpillsWhenServerFills) {
  ClusterConfig cfg = SmallCluster();
  cfg.master.placement = PlacementPolicy::kPack;
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    // 24 slabs > one server's 16: must spill onto a second server.
    ASSERT_TRUE(client.Ralloc("r", 24ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    std::set<uint32_t> nodes;
    for (const auto& slab : (*region)->desc().slabs) {
      nodes.insert(slab.server_node);
    }
    EXPECT_EQ(nodes.size(), 2u);
  });
}

TEST(PlacementTest, RandomIsDeterministicPerSeed) {
  auto placement = [](uint64_t seed) {
    ClusterConfig cfg = SmallCluster();
    cfg.master.placement = PlacementPolicy::kRandom;
    cfg.master.placement_seed = seed;
    TestCluster cluster(cfg);
    std::vector<uint32_t> nodes;
    cluster.RunClient([&](RStoreClient& client) {
      ASSERT_TRUE(client.Ralloc("r", 12ULL << 20).ok());
      auto region = client.Rmap("r");
      ASSERT_TRUE(region.ok());
      for (const auto& slab : (*region)->desc().slabs) {
        nodes.push_back(slab.server_node);
      }
    });
    return nodes;
  };
  EXPECT_EQ(placement(1), placement(1));
  EXPECT_NE(placement(1), placement(99));
}

TEST(PlacementTest, ReplicationStillDistinctUnderPack) {
  ClusterConfig cfg = SmallCluster();
  cfg.master.placement = PlacementPolicy::kPack;
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20, /*copies=*/2).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    const RegionDesc& desc = (*region)->desc();
    for (size_t i = 0; i < desc.slabs.size(); ++i) {
      EXPECT_NE(desc.slabs[i].server_node,
                desc.replicas[0][i].server_node) << i;
    }
  });
}

// ------------------------------------------------------ determinism -----
TEST(DeterminismTest, IdenticalSeedsGiveIdenticalTimelines) {
  auto run = [](uint64_t seed) {
    ClusterConfig cfg = SmallCluster();
    cfg.seed = seed;
    TestCluster cluster(cfg);
    Nanos done_at = 0;
    cluster.RunClient([&](RStoreClient& client) {
      ASSERT_TRUE(client.Ralloc("r", 4ULL << 20).ok());
      auto region = client.Rmap("r");
      ASSERT_TRUE(region.ok());
      auto buf = client.AllocBuffer(1ULL << 20);
      ASSERT_TRUE(buf.ok());
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE((*region)->Write(i * (1ULL << 20), buf->data).ok());
      }
      done_at = sim::Now();
    });
    return done_at;
  };
  const Nanos a = run(99);
  const Nanos b = run(99);
  const Nanos c = run(100);
  EXPECT_EQ(a, b);
  (void)c;  // different seed may or may not differ; only equality matters
}

}  // namespace
}  // namespace rstore::core
