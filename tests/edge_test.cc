// Edge cases and end-to-end failure scenarios that the per-module suites
// do not reach: transient network partitions with lease loss and
// re-registration, RNR buffer exhaustion, multiple RPC services per node,
// ListRegions, IO timeouts, and scheduler stop semantics.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "rpc/rpc.h"
#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;
using sim::Micros;
using sim::Millis;
using sim::Seconds;

// ------------------------------------------------ partition heal cycle --
TEST(PartitionTest, TransientPartitionDegradesThenHeals) {
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.client_nodes = 1;
  cfg.server_capacity = 8ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.master.lease_timeout = Millis(120);
  cfg.master.sweep_interval = Millis(30);
  TestCluster cluster(cfg);

  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 2ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    const uint32_t victim = (*region)->desc().slabs[0].server_node;
    const uint32_t master_node = cluster.master_node_id();

    // Partition the server from the master: heartbeats die, lease lapses.
    cluster.net().fabric().SetLinkDown(victim, master_node, true);
    sim::Sleep(Millis(500));
    EXPECT_EQ(cluster.master().live_servers(), 1u);
    EXPECT_EQ(client.Rmap("r", false, true).code(), ErrorCode::kUnavailable);

    // Heal: the server's registration loop reconnects, re-registers with
    // the same arena and rkey, and the region un-degrades.
    cluster.net().fabric().SetLinkDown(victim, master_node, false);
    sim::Sleep(Millis(500));
    EXPECT_EQ(cluster.master().live_servers(), 2u);
    auto healed = client.Rmap("r", false, /*fresh=*/true);
    EXPECT_TRUE(healed.ok()) << healed.status();

    // And data written before the partition is still there (the server
    // process never died).
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    EXPECT_TRUE((*healed)->Read(0, buf->data).ok());
  });
}

TEST(PartitionTest, SlabsNotDoubleAllocatedAcrossReRegistration) {
  ClusterConfig cfg;
  cfg.memory_servers = 1;
  cfg.client_nodes = 1;
  cfg.server_capacity = 4ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.master.lease_timeout = Millis(120);
  cfg.master.sweep_interval = Millis(30);
  TestCluster cluster(cfg);

  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("held", 3ULL << 20).ok());  // 3 of 4 slabs
    const uint32_t server = cluster.server_node(0).id();
    cluster.net().fabric().SetLinkDown(server, cluster.master_node_id(),
                                       true);
    sim::Sleep(Millis(500));
    cluster.net().fabric().SetLinkDown(server, cluster.master_node_id(),
                                       false);
    sim::Sleep(Millis(500));
    // After re-registration only the 1 unowned slab is offered.
    EXPECT_EQ(cluster.master().free_slabs(), 1u);
    EXPECT_EQ(client.Ralloc("toobig", 2ULL << 20).code(),
              ErrorCode::kOutOfMemory);
    EXPECT_TRUE(client.Ralloc("fits", 1ULL << 20).ok());
  });
}

// ------------------------------------------------------- control extras --
TEST(ControlTest, ListRegionsReportsNamesAndDegradation) {
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.client_nodes = 1;
  cfg.server_capacity = 8ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("alpha", 1ULL << 20).ok());
    ASSERT_TRUE(client.Ralloc("beta", 2ULL << 20).ok());
    auto stat = client.Stat();
    ASSERT_TRUE(stat.ok());
    EXPECT_EQ(stat->regions, 2u);
  });
  EXPECT_EQ(cluster.master().region_count(), 2u);
}

TEST(ControlTest, IoTimesOutInsteadOfHangingWhenPeerStalls) {
  // A region on a server that is partitioned from the CLIENT (but not
  // the master, so the lease stays live): IO must fail by retry/timeout,
  // not hang.
  ClusterConfig cfg;
  cfg.memory_servers = 1;
  cfg.client_nodes = 1;
  cfg.server_capacity = 4ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  TestCluster cluster(cfg);
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());  // connection up
    const uint32_t server = (*region)->desc().slabs[0].server_node;
    cluster.net().fabric().SetLinkDown(sim::CurrentNode().id(), server,
                                       true);
    const sim::Nanos t0 = sim::Now();
    Status st = (*region)->Write(0, buf->data);
    EXPECT_FALSE(st.ok());
    EXPECT_LT(sim::Now() - t0, Seconds(10));  // bounded, not hung
  });
}

// ------------------------------------------------------------ verbs RNR --
TEST(VerbsEdgeTest, RnrBufferOverflowErrorsTheSender) {
  sim::Simulation sim;
  verbs::Network net(sim);
  auto& server = sim.AddNode("server");
  auto& client = sim.AddNode("client");
  auto& sdev = net.AddDevice(server);
  auto& cdev = net.AddDevice(client);
  net.Listen(sdev, 1);
  server.Spawn("srv", [&] {
    (void)net.Listen(sdev, 1).Accept();
    // Never posts a receive.
  });
  bool saw_rnr = false;
  client.Spawn("cli", [&] {
    verbs::QpConfig deep;
    deep.max_send_wr = 2048;  // enough outstanding to overrun the RNR cap
    auto qp = net.Connect(cdev, server.id(), 1, deep);
    ASSERT_TRUE(qp.ok());
    std::vector<std::byte> buf(8);
    auto* mr = *cdev.CreatePd().RegisterMemory(buf.data(), buf.size(),
                                               verbs::kLocalWrite);
    // Flood well past the RNR buffer (1024).
    for (int i = 0; i < 1200; ++i) {
      Status posted = (*qp)->PostSend(verbs::SendWr{
          .wr_id = static_cast<uint64_t>(i),
          .opcode = verbs::Opcode::kSend,
          .local = {buf.data(), 8, mr->lkey()}});
      if (!posted.ok()) break;  // SQ depth or QP error: fine
      for (const auto& wc : (*qp)->send_cq().Poll(16)) {
        if (wc.status == verbs::WcStatus::kRnrRetryExceeded) saw_rnr = true;
      }
      if (saw_rnr) break;
    }
    // Drain outstanding completions for a bounded time.
    const sim::Nanos deadline = sim::Now() + Seconds(1);
    while (!saw_rnr && sim::Now() < deadline) {
      for (const auto& wc :
           (*qp)->send_cq().WaitPoll(16, deadline - sim::Now())) {
        if (wc.status == verbs::WcStatus::kRnrRetryExceeded) saw_rnr = true;
      }
    }
  });
  sim.Run();
  EXPECT_TRUE(saw_rnr);
}

TEST(VerbsEdgeTest, ClosedQpNaksArrivingTraffic) {
  sim::Simulation sim;
  verbs::Network net(sim);
  auto& a = sim.AddNode("a");
  auto& b = sim.AddNode("b");
  auto& adev = net.AddDevice(a);
  auto& bdev = net.AddDevice(b);
  std::vector<std::byte> remote(4096);
  auto* rmr = *bdev.CreatePd().RegisterMemory(
      remote.data(), remote.size(), verbs::kLocalWrite | verbs::kRemoteWrite);
  net.Listen(bdev, 1);
  verbs::QueuePair* server_qp = nullptr;
  b.Spawn("srv", [&] {
    auto qp = net.Listen(bdev, 1).Accept();
    ASSERT_TRUE(qp.ok());
    server_qp = *qp;
  });
  a.Spawn("cli", [&] {
    auto qp = net.Connect(adev, b.id(), 1);
    ASSERT_TRUE(qp.ok());
    std::vector<std::byte> buf(64);
    auto* mr = *adev.CreatePd().RegisterMemory(buf.data(), buf.size(),
                                               verbs::kLocalWrite);
    sim::Sleep(Micros(10));
    ASSERT_NE(server_qp, nullptr);
    server_qp->Close();  // destination torn down
    ASSERT_TRUE((*qp)->PostSend(verbs::SendWr{
        .wr_id = 1,
        .opcode = verbs::Opcode::kRdmaWrite,
        .local = {buf.data(), 64, mr->lkey()},
        .remote_addr = rmr->remote_addr(),
        .rkey = rmr->rkey()}).ok());
    auto wc = (*qp)->send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_EQ(wc->status, verbs::WcStatus::kRetryExceeded);
  });
  sim.Run();
}

// ----------------------------------------------------- multiple services --
TEST(RpcEdgeTest, TwoServicesOnOneNodeAreIndependent) {
  sim::Simulation sim;
  verbs::Network net(sim);
  auto& server = sim.AddNode("server");
  auto& client = sim.AddNode("client");
  auto& sdev = net.AddDevice(server);
  auto& cdev = net.AddDevice(client);

  rpc::RpcServer s1(sdev, 100), s2(sdev, 200);
  s1.RegisterHandler(1, [](rpc::Reader&, rpc::Writer& resp) {
    resp.Str("service-one");
    return Status::Ok();
  });
  s2.RegisterHandler(1, [](rpc::Reader&, rpc::Writer& resp) {
    resp.Str("service-two");
    return Status::Ok();
  });
  s1.Start();
  s2.Start();

  bool done = false;
  client.Spawn("cli", [&] {
    auto c1 = rpc::RpcClient::Connect(cdev, server.id(), 100);
    auto c2 = rpc::RpcClient::Connect(cdev, server.id(), 200);
    ASSERT_TRUE(c1.ok() && c2.ok());
    auto r1 = (*c1)->Call(1, rpc::Writer{});
    auto r2 = (*c2)->Call(1, rpc::Writer{});
    ASSERT_TRUE(r1.ok() && r2.ok());
    std::string a, b;
    rpc::Reader ra(*r1), rb(*r2);
    ASSERT_TRUE(ra.Str(&a) && rb.Str(&b));
    EXPECT_EQ(a, "service-one");
    EXPECT_EQ(b, "service-two");
    done = true;
    sim::CurrentNode().sim().RequestStop();
  });
  sim.Run();
  EXPECT_TRUE(done);
}

// ----------------------------------------------------------- scheduler --
TEST(SchedulerEdgeTest, RequestStopReturnsPromptlyAndResumes) {
  sim::Simulation sim;
  auto& n = sim.AddNode("a");
  int ticks = 0;
  n.Spawn("ticker", [&] {
    for (int i = 0; i < 100; ++i) {
      sim::Sleep(Millis(1));
      ++ticks;
      if (ticks == 10) sim::CurrentNode().sim().RequestStop();
    }
  });
  sim.Run();
  EXPECT_EQ(ticks, 10);
  sim.Run();  // resumes where it left off
  EXPECT_EQ(ticks, 100);
}

TEST(SchedulerEdgeTest, RunUntilThenRunCompletes) {
  sim::Simulation sim;
  auto& n = sim.AddNode("a");
  sim::Nanos finished = 0;
  n.Spawn("w", [&] {
    sim::Sleep(Millis(50));
    finished = sim::Now();
  });
  sim.RunUntil(Millis(10));
  EXPECT_EQ(finished, 0u);
  sim.RunUntil(Millis(20));
  EXPECT_EQ(finished, 0u);
  sim.Run();
  EXPECT_EQ(finished, Millis(50));
}

}  // namespace
}  // namespace rstore
