// Tests for rexplore, the schedule-exploration layer over the deterministic
// simulator.
//
// The properties pinned here are the ones the design leans on:
//   - the baseline policy is bit-identical to running with no policy,
//   - a seeded run is deterministic (same seed => same schedule and trace),
//   - the sparse decision-trace replays and survives JSON round-trips,
//   - PCT at depth 3 finds a schedule-dependent un-fenced publish race that
//     the baseline schedule can never hit, within a bounded run budget, and
//     the greedily minimized trace still reproduces the exact report,
//   - RSTORE_EXPLORE attaches policies per-Simulation, and exploration
//     counters land in the telemetry registry on shutdown.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/check.h"
#include "explore/explorer.h"
#include "explore/policy.h"
#include "explore/trace_json.h"
#include "explore/workloads.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulation.h"

namespace rstore {
namespace {

using explore::BaselinePolicy;
using explore::BuiltinWorkloads;
using explore::DecisionKind;
using explore::DecisionTrace;
using explore::Explorer;
using explore::ExploreOptions;
using explore::ExploreReport;
using explore::ExploreSpec;
using explore::FindWorkload;
using explore::NamedWorkload;
using explore::PerturbConfig;
using explore::RandomWalkPolicy;
using explore::ReplayPolicy;
using explore::RunContext;
using explore::RunOutcome;
using explore::SchedulePolicy;
using explore::ToJson;
using explore::TraceEntry;
using explore::TraceFromJson;
using explore::Workload;

// Sets (or clears, for nullptr) an environment variable for the test's
// lifetime and restores the previous state after. The explore tests must be
// hermetic even when the whole binary runs under RSTORE_EXPLORE (the CI
// exploration job does exactly that).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* prev = std::getenv(name); prev != nullptr) {
      had_prev_ = true;
      prev_ = prev;
    }
    if (value != nullptr) {
      setenv(name, value, /*overwrite=*/1);
    } else {
      unsetenv(name);
    }
  }
  ~EnvGuard() {
    if (had_prev_) {
      setenv(name_, prev_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
  bool had_prev_ = false;
  std::string prev_;
};

// Runs a workload once with an explicit policy (no checker), capturing the
// final virtual time and event count.
RunOutcome RunDirect(const Workload& workload, SchedulePolicy* policy) {
  RunOutcome out;
  RunContext ctx;
  ctx.policy = policy;
  ctx.out_final_vtime = &out.final_vtime;
  ctx.out_events = &out.events;
  workload(ctx);
  return out;
}

// ------------------------------------------------------- spec parsing ----

TEST(ExploreSpecTest, ParsesValidSpecs) {
  ExploreSpec s;
  EXPECT_TRUE(ExploreSpec::Parse("baseline", &s));
  EXPECT_EQ(s.policy, "baseline");
  EXPECT_TRUE(ExploreSpec::Parse("random:7:32", &s));
  EXPECT_EQ(s.policy, "random");
  EXPECT_EQ(s.seed, 7u);
  EXPECT_EQ(s.runs, 32u);
  EXPECT_TRUE(ExploreSpec::Parse("pct5:2:8:50000", &s));
  EXPECT_EQ(s.policy, "pct");
  EXPECT_EQ(s.pct_depth, 5u);
  EXPECT_EQ(s.seed, 2u);
  EXPECT_EQ(s.runs, 8u);
  EXPECT_EQ(s.max_delay_ns, 50000u);
  EXPECT_TRUE(ExploreSpec::Parse("pct", &s));
  EXPECT_EQ(s.pct_depth, 3u);  // default depth
}

TEST(ExploreSpecTest, RejectsMalformedSpecs) {
  ExploreSpec s;
  EXPECT_FALSE(ExploreSpec::Parse("", &s));
  EXPECT_FALSE(ExploreSpec::Parse("bogus", &s));
  EXPECT_FALSE(ExploreSpec::Parse("random:x", &s));
  EXPECT_FALSE(ExploreSpec::Parse("random:1:0", &s));    // zero runs
  EXPECT_FALSE(ExploreSpec::Parse("pct0", &s));          // zero depth
  EXPECT_FALSE(ExploreSpec::Parse("random:1:2:3:4", &s));  // too many parts
}

TEST(ExploreSpecTest, DerivedSeedsCycleThroughRuns) {
  ExploreSpec s;
  ASSERT_TRUE(ExploreSpec::Parse("random:10:4", &s));
  EXPECT_EQ(s.SeedFor(0), 10u);
  EXPECT_EQ(s.SeedFor(3), 13u);
  EXPECT_EQ(s.SeedFor(5), 11u);  // wraps modulo runs
}

// ---------------------------------------------------- replay mechanics ----

TEST(ExplorePolicyTest, ReplayAnswersRecordedOrdinalsOnly) {
  DecisionTrace t;
  t.policy = "replay";
  t.entries = {{2, DecisionKind::kEventTieBreak, 3, 2}};
  ReplayPolicy pol(t);
  const uint32_t lanes[3] = {0, 1, 2};
  EXPECT_EQ(pol.PickEvent(lanes, 3), 0u);  // ordinal 0: not recorded
  EXPECT_EQ(pol.PickEvent(lanes, 3), 0u);  // ordinal 1: not recorded
  EXPECT_EQ(pol.PickEvent(lanes, 3), 2u);  // ordinal 2: recorded pick
  EXPECT_EQ(pol.divergences(), 0u);
}

TEST(ExplorePolicyTest, ReplayCountsKindMismatchAsDivergence) {
  DecisionTrace t;
  t.policy = "replay";
  t.entries = {{0, DecisionKind::kWaiterWake, 2, 1}};
  ReplayPolicy pol(t);
  const uint32_t lanes[2] = {0, 1};
  EXPECT_EQ(pol.PickEvent(lanes, 2), 0u);  // kind mismatch -> baseline
  EXPECT_EQ(pol.divergences(), 1u);
}

TEST(ExplorePolicyTest, SingleCandidateConsumesNoOrdinal) {
  DecisionTrace t;
  t.policy = "replay";
  t.entries = {{0, DecisionKind::kEventTieBreak, 2, 1}};
  ReplayPolicy pol(t);
  const uint32_t lane = 7;
  EXPECT_EQ(pol.PickEvent(&lane, 1), 0u);  // n < 2: no decision
  EXPECT_EQ(pol.choices(), 0u);
  const uint32_t lanes[2] = {0, 1};
  EXPECT_EQ(pol.PickEvent(lanes, 2), 1u);  // still ordinal 0
}

// -------------------------------------------------- trace JSON format ----

TEST(ExploreTraceJsonTest, RoundTripsFullPrecisionSeed) {
  DecisionTrace t;
  t.policy = "pct";
  t.seed = (uint64_t{1} << 60) + 12345;  // above double's 2^53 precision
  t.pct_depth = 3;
  t.workload = "race-unfenced";
  t.total_choices = 99;
  t.entries = {{4, DecisionKind::kFabricDelay, 0, 85869},
               {7, DecisionKind::kWaiterWake, 2, 1}};
  auto back = TraceFromJson(ToJson(t));
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->policy, t.policy);
  EXPECT_EQ(back->seed, t.seed);
  EXPECT_EQ(back->pct_depth, t.pct_depth);
  EXPECT_EQ(back->workload, t.workload);
  EXPECT_EQ(back->total_choices, t.total_choices);
  EXPECT_EQ(back->entries, t.entries);
}

TEST(ExploreTraceJsonTest, RejectsMalformedTraces) {
  EXPECT_FALSE(TraceFromJson("[]").ok());
  EXPECT_FALSE(TraceFromJson(R"({"seed":"1","entries":[]})").ok());
  EXPECT_FALSE(TraceFromJson(R"({"policy":"pct","seed":"1"})").ok());
  EXPECT_FALSE(TraceFromJson(
                   R"({"policy":"pct","seed":"1",
                       "entries":[{"ordinal":0,"kind":9,"n":0,"pick":1}]})")
                   .ok());
}

// ----------------------------------------- baseline == no policy at all ----

TEST(ExploreBaselineTest, BaselinePolicyBitIdenticalToNoPolicy) {
  EnvGuard guard("RSTORE_EXPLORE", nullptr);
  const auto all = BuiltinWorkloads();
  for (const char* name : {"fenced-handoff", "atomic-counter"}) {
    const NamedWorkload* w = FindWorkload(all, name);
    ASSERT_NE(w, nullptr);
    const RunOutcome plain = RunDirect(w->workload, nullptr);
    BaselinePolicy pol;
    const RunOutcome base = RunDirect(w->workload, &pol);
    EXPECT_EQ(plain.final_vtime, base.final_vtime) << name;
    EXPECT_EQ(plain.events, base.events) << name;
    EXPECT_GT(pol.choices(), 0u) << name;       // decisions were consulted
    EXPECT_TRUE(pol.entries().empty()) << name;  // and all picked baseline
  }
}

// -------------------------------------------------- seeded determinism ----

TEST(ExploreDeterminismTest, SameSeedSameScheduleDistinctSeedsDiverge) {
  EnvGuard guard("RSTORE_EXPLORE", nullptr);
  const auto all = BuiltinWorkloads();
  const Workload& w = FindWorkload(all, "atomic-counter")->workload;
  const PerturbConfig perturb{120000, 120000, 250};
  RandomWalkPolicy a(42, perturb);
  RandomWalkPolicy b(42, perturb);
  RandomWalkPolicy c(43, perturb);
  const RunOutcome ra = RunDirect(w, &a);
  const RunOutcome rb = RunDirect(w, &b);
  const RunOutcome rc = RunDirect(w, &c);
  EXPECT_EQ(ra.final_vtime, rb.final_vtime);
  EXPECT_EQ(ra.events, rb.events);
  EXPECT_EQ(a.choices(), b.choices());
  EXPECT_EQ(a.entries(), b.entries());
  EXPECT_FALSE(a.entries().empty());  // the perturbation actually fired
  EXPECT_TRUE(c.entries() != a.entries() || rc.final_vtime != ra.final_vtime);
}

// ------------------------------- the acceptance race: PCT finds, baseline
// ------------------------------- misses, minimized trace reproduces ----

TEST(ExploreSearchTest, PctDepth3FindsUnfencedRaceBaselineMisses) {
  EnvGuard guard("RSTORE_EXPLORE", nullptr);
  const auto all = BuiltinWorkloads();
  const Workload& race = FindWorkload(all, "race-unfenced")->workload;

  // The baseline schedule always meets the writer's completion deadline,
  // so the un-fenced branch never executes and rcheck sees nothing.
  ExploreOptions base_opts;
  base_opts.policy = "baseline";
  base_opts.runs = 2;
  base_opts.max_delay_ns = 0;
  const ExploreReport clean = Explorer(base_opts).Explore(race);
  EXPECT_FALSE(clean.violation_found);
  EXPECT_EQ(clean.runs_executed, 2u);

  // PCT with depth 3 and bounded fault injection finds it within the run
  // budget (empirically on run 3 with this seed; the budget is headroom).
  ExploreOptions opts;
  opts.policy = "pct";
  opts.pct_depth = 3;
  opts.seed = 1;
  opts.runs = 32;
  opts.max_delay_ns = 120000;
  const ExploreReport report = Explorer(opts).Explore(race);
  ASSERT_TRUE(report.violation_found);
  EXPECT_LE(report.runs_executed, 32u);
  EXPECT_GE(report.violating.violation_count, 1u);
  ASSERT_FALSE(report.minimized.entries.empty());
  EXPECT_LE(report.minimized.entries.size(),
            report.violating.trace.entries.size());

  // Replaying the minimized trace is fully deterministic: two replays give
  // the same schedule, the same report text, and reproduce every signature
  // the original violating run had.
  const RunOutcome r1 = Explorer::Replay(race, report.minimized);
  const RunOutcome r2 = Explorer::Replay(race, report.minimized);
  ASSERT_GE(r1.violation_count, 1u);
  EXPECT_EQ(r1.divergences, 0u);
  EXPECT_EQ(r1.final_vtime, r2.final_vtime);
  EXPECT_EQ(r1.report_text, r2.report_text);
  EXPECT_EQ(r1.violation_sigs, r2.violation_sigs);
  for (const std::string& sig : report.violating.violation_sigs) {
    EXPECT_NE(std::find(r1.violation_sigs.begin(), r1.violation_sigs.end(),
                        sig),
              r1.violation_sigs.end())
        << "minimized trace lost signature " << sig;
  }
}

TEST(ExploreSearchTest, FencedHandoffStaysCleanUnderExploration) {
  EnvGuard guard("RSTORE_EXPLORE", nullptr);
  const auto all = BuiltinWorkloads();
  const Workload& fenced = FindWorkload(all, "fenced-handoff")->workload;
  ExploreOptions opts;
  opts.policy = "pct";
  opts.pct_depth = 3;
  opts.seed = 1;
  opts.runs = 8;
  opts.max_delay_ns = 120000;
  const ExploreReport report = Explorer(opts).Explore(fenced);
  EXPECT_FALSE(report.violation_found);
  EXPECT_EQ(report.runs_executed, 8u);
  EXPECT_GT(report.total_choices, 0u);
}

// ------------------------------------------------- env-variable attach ----

TEST(ExploreEnvTest, ValidSpecAttachesPolicyPerSimulation) {
  EnvGuard guard("RSTORE_EXPLORE", "random:5:2");
  sim::Simulation sim;
  ASSERT_NE(sim.policy(), nullptr);
  EXPECT_EQ(sim.policy()->name(), "random");
  // Seeds cycle through the spec's `runs` derived seeds; which one this
  // instance gets depends on how many Simulations the process already made.
  const uint64_t seed = sim.policy()->seed();
  EXPECT_TRUE(seed == 5u || seed == 6u) << seed;
  sim::Simulation sim2;
  ASSERT_NE(sim2.policy(), nullptr);
  EXPECT_NE(sim2.policy(), sim.policy());  // each gets its own instance
}

TEST(ExploreEnvTest, InvalidSpecAttachesNothing) {
  EnvGuard guard("RSTORE_EXPLORE", "bogus:zzz");
  sim::Simulation sim;
  EXPECT_EQ(sim.policy(), nullptr);
}

// ----------------------------------------------------- obs counters ----

TEST(ExploreObsTest, CountersExportedOnShutdown) {
  EnvGuard guard("RSTORE_EXPLORE", nullptr);
  RandomWalkPolicy policy(9, PerturbConfig{0, 0, 0});
  obs::Telemetry telemetry;
  {
    sim::Simulation sim;
    sim.AttachTelemetry(&telemetry);
    sim.AttachPolicy(&policy);
    // Two events at the same instant force one tie-break consultation.
    sim.At(sim::Nanos{10}, [] {});
    sim.At(sim::Nanos{10}, [] {});
    sim.Run();
  }
  obs::NodeMetrics& host = telemetry.metrics().ForNode(~0u, "host");
  EXPECT_EQ(host.GetCounter("explore.runs").value(), 1u);
  EXPECT_GE(policy.choices(), 1u);
  EXPECT_EQ(host.GetCounter("explore.choices").value(), policy.choices());
  EXPECT_EQ(host.GetCounter("explore.divergences").value(), 0u);
}

}  // namespace
}  // namespace rstore
