// Tests for the fabric model: latency/bandwidth arithmetic, port
// contention (fan-in and fan-out saturation), pipelining, loopback,
// partitions and node death.
#include <gtest/gtest.h>

#include <algorithm>

#include <vector>

#include "sim/fabric.h"
#include "sim/simulation.h"

namespace rstore::sim {
namespace {

struct FabricFixture : ::testing::Test {
  FabricFixture() : fabric(sim, NicConfig{}) {
    for (int i = 0; i < 13; ++i) sim.AddNode("n" + std::to_string(i));
  }
  Simulation sim;
  Fabric fabric;
};

TEST_F(FabricFixture, UncontendedLatencyIsBasePlusWire) {
  const NicConfig& cfg = fabric.config();
  Nanos delivered_at = kNever;
  const uint64_t payload = 4096;
  fabric.Send(0, 1, payload, [&] { delivered_at = sim.NowNanos(); });
  sim.Run();
  const Nanos expect =
      cfg.base_latency +
      TransferTime(payload + cfg.header_overhead_bytes, cfg.bandwidth_bps);
  EXPECT_EQ(delivered_at, expect);
}

TEST_F(FabricFixture, SmallMessageLatencyIsDominatedByBaseLatency) {
  Nanos delivered_at = kNever;
  fabric.Send(0, 1, 8, [&] { delivered_at = sim.NowNanos(); });
  sim.Run();
  EXPECT_GE(delivered_at, fabric.config().base_latency);
  EXPECT_LT(delivered_at, fabric.config().base_latency + Nanos(100));
}

TEST_F(FabricFixture, BackToBackTransfersPipeline) {
  // N messages from one source to one destination: total time ≈
  // latency + N * wire_time, not N * (latency + wire_time).
  const int kMessages = 16;
  const uint64_t kSize = 1 << 20;
  int delivered = 0;
  Nanos last = 0;
  for (int i = 0; i < kMessages; ++i) {
    fabric.Send(0, 1, kSize, [&] {
      ++delivered;
      last = sim.NowNanos();
    });
  }
  sim.Run();
  EXPECT_EQ(delivered, kMessages);
  const NicConfig& cfg = fabric.config();
  const Nanos wire =
      TransferTime(kSize + cfg.header_overhead_bytes, cfg.bandwidth_bps);
  EXPECT_NEAR(static_cast<double>(last),
              static_cast<double>(cfg.base_latency + kMessages * wire),
              static_cast<double>(wire));
}

TEST_F(FabricFixture, FanInSaturatesDestinationPort) {
  // 4 senders each push 64 MiB to node 0 simultaneously: the receiving
  // port is the bottleneck, so finish time ≈ total_bytes / bandwidth.
  const uint64_t kSize = 64ULL << 20;
  int delivered = 0;
  Nanos last = 0;
  for (uint32_t src = 1; src <= 4; ++src) {
    fabric.Send(src, 0, kSize, [&] {
      ++delivered;
      last = sim.NowNanos();
    });
  }
  sim.Run();
  EXPECT_EQ(delivered, 4);
  const double expected_s =
      static_cast<double>(4 * kSize * 8) / fabric.config().bandwidth_bps;
  EXPECT_NEAR(ToSeconds(last), expected_s, expected_s * 0.02);
}

TEST_F(FabricFixture, FanOutSaturatesSourcePort) {
  const uint64_t kSize = 64ULL << 20;
  int delivered = 0;
  Nanos last = 0;
  for (uint32_t dst = 1; dst <= 4; ++dst) {
    fabric.Send(0, dst, kSize, [&] {
      ++delivered;
      last = sim.NowNanos();
    });
  }
  sim.Run();
  EXPECT_EQ(delivered, 4);
  const double expected_s =
      static_cast<double>(4 * kSize * 8) / fabric.config().bandwidth_bps;
  EXPECT_NEAR(ToSeconds(last), expected_s, expected_s * 0.02);
}

TEST_F(FabricFixture, DisjointPairsDoNotContend) {
  // 0->1 and 2->3 share no port: both must complete in single-transfer
  // time. One slot per transfer: the deliveries land at the same virtual
  // instant on different nodes, so under the partitioned scheduler the
  // callbacks may run on concurrent host threads.
  const uint64_t kSize = 64ULL << 20;
  Nanos done[2] = {0, 0};
  fabric.Send(0, 1, kSize, [&] { done[0] = sim.NowNanos(); });
  fabric.Send(2, 3, kSize, [&] { done[1] = sim.NowNanos(); });
  sim.Run();
  ASSERT_NE(done[0], 0u);
  EXPECT_EQ(done[0], done[1]);
  const double single_s =
      static_cast<double>(kSize * 8) / fabric.config().bandwidth_bps;
  EXPECT_NEAR(ToSeconds(done[0]), single_s, single_s * 0.05);
}

TEST_F(FabricFixture, AggregateBandwidthScalesWithNodeCount) {
  // Ring traffic i -> (i+1): aggregate delivered bandwidth grows linearly
  // with the number of participating nodes. This is the mechanism behind
  // experiment E3 (705 Gb/s on 12 machines).
  auto run_ring = [&](uint32_t nodes) {
    Simulation s;
    for (uint32_t i = 0; i < nodes; ++i) s.AddNode("m");
    Fabric f(s, NicConfig{});
    const uint64_t kSize = 256ULL << 20;
    // Per-destination slots: the symmetric ring delivers on every node at
    // the same virtual instant, concurrently under the partitioned
    // scheduler.
    std::vector<Nanos> done(nodes, 0);
    for (uint32_t i = 0; i < nodes; ++i) {
      const uint32_t dst = (i + 1) % nodes;
      f.Send(i, dst, kSize, [&done, &s, dst] { done[dst] = s.NowNanos(); });
    }
    s.Run();
    const Nanos last = *std::max_element(done.begin(), done.end());
    return static_cast<double>(nodes * kSize * 8) / ToSeconds(last);
  };
  const double bw4 = run_ring(4);
  const double bw12 = run_ring(12);
  EXPECT_NEAR(bw12 / bw4, 3.0, 0.1);
  EXPECT_NEAR(bw12, 12 * fabric.config().bandwidth_bps,
              0.05 * 12 * fabric.config().bandwidth_bps);
}

TEST_F(FabricFixture, LoopbackBypassesPortModel) {
  Nanos delivered_at = kNever;
  fabric.Send(5, 5, 1 << 20, [&] { delivered_at = sim.NowNanos(); });
  sim.Run();
  EXPECT_EQ(delivered_at, fabric.config().loopback_latency);
}

TEST_F(FabricFixture, PerMessageGapCapsMessageRate) {
  // Zero-byte messages still cannot exceed 1/per_message_gap rate.
  const int kMessages = 1000;
  Nanos last = 0;
  int delivered = 0;
  for (int i = 0; i < kMessages; ++i) {
    fabric.Send(0, 1, 0, [&] {
      ++delivered;
      last = sim.NowNanos();
    });
  }
  sim.Run();
  EXPECT_EQ(delivered, kMessages);
  EXPECT_GE(last, (kMessages - 1) * fabric.config().per_message_gap);
}

TEST_F(FabricFixture, PartitionDropsWithDetectionDelay) {
  fabric.SetLinkDown(0, 1, true);
  EXPECT_FALSE(fabric.LinkUp(0, 1));
  EXPECT_FALSE(fabric.LinkUp(1, 0));  // bidirectional
  bool delivered = false;
  Nanos dropped_at = 0;
  fabric.Send(0, 1, 64, [&] { delivered = true; },
              [&] { dropped_at = sim.NowNanos(); });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(dropped_at, fabric.config().drop_detect_latency);
}

TEST_F(FabricFixture, HealedLinkDeliversAgain) {
  fabric.SetLinkDown(0, 1, true);
  fabric.SetLinkDown(0, 1, false);
  bool delivered = false;
  fabric.Send(0, 1, 64, [&] { delivered = true; });
  sim.Run();
  EXPECT_TRUE(delivered);
}

TEST_F(FabricFixture, SendToDeadNodeDrops) {
  sim.KillNode(3);
  bool delivered = false;
  bool dropped = false;
  sim.Run();  // let the kill sweep run
  fabric.Send(0, 3, 64, [&] { delivered = true; }, [&] { dropped = true; });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(FabricFixture, DeathMidFlightDropsAtDelivery) {
  // Node dies while a long transfer is in flight: sender gets the drop
  // callback, not the delivery.
  const uint64_t kSize = 64ULL << 20;  // ~91 ms wire time
  bool delivered = false;
  bool dropped = false;
  fabric.Send(0, 1, kSize, [&] { delivered = true; }, [&] { dropped = true; });
  sim.After(Millis(1), [&] { sim.KillNode(1); });
  sim.Run();
  EXPECT_FALSE(delivered);
  EXPECT_TRUE(dropped);
}

TEST_F(FabricFixture, EgressRoundRobinInterleavesDestinations) {
  // One source with deep backlogs to two destinations: the egress pump
  // must alternate between them rather than draining one queue first.
  const int kPerDst = 8;
  const uint64_t kSize = 1 << 20;
  std::vector<uint32_t> order;
  for (int i = 0; i < kPerDst; ++i) {
    fabric.Send(0, 1, kSize, [&] { order.push_back(1); });
    fabric.Send(0, 2, kSize, [&] { order.push_back(2); });
  }
  sim.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(2 * kPerDst));
  for (size_t i = 0; i + 1 < order.size(); i += 2) {
    EXPECT_NE(order[i], order[i + 1]) << "burst to one destination at " << i;
  }
}

TEST_F(FabricFixture, LateFlowIsNotStarvedByDeepBacklog) {
  // A message to a fresh destination queued behind a 16-deep backlog to
  // another destination must go out after at most one in-progress
  // transfer plus its own slot — not after the whole backlog.
  const uint64_t kSize = 1 << 20;
  const NicConfig& cfg = fabric.config();
  const Nanos wire =
      TransferTime(kSize + cfg.header_overhead_bytes, cfg.bandwidth_bps);
  for (int i = 0; i < 16; ++i) fabric.Send(0, 1, kSize, [] {});
  Nanos late_at = kNever;
  fabric.Send(0, 2, kSize, [&] { late_at = sim.NowNanos(); });
  sim.Run();
  EXPECT_LT(late_at, cfg.base_latency + 3 * wire);
}

TEST_F(FabricFixture, ConcurrentFlowsAccountBytesPerPort) {
  // Cross traffic among three nodes: per-port byte counters must add up
  // exactly, independent of egress scheduling order.
  const uint64_t kA = 3 << 20, kB = 1 << 20, kC = 512 << 10;
  int delivered = 0;
  fabric.Send(0, 1, kA, [&] { ++delivered; });
  fabric.Send(0, 2, kB, [&] { ++delivered; });
  fabric.Send(1, 2, kC, [&] { ++delivered; });
  fabric.Send(2, 0, kB, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(fabric.bytes_out(0), kA + kB);
  EXPECT_EQ(fabric.bytes_out(1), kC);
  EXPECT_EQ(fabric.bytes_out(2), kB);
  EXPECT_EQ(fabric.bytes_in(0), kB);
  EXPECT_EQ(fabric.bytes_in(1), kA);
  EXPECT_EQ(fabric.bytes_in(2), kB + kC);
  EXPECT_EQ(fabric.messages_out(0), 2u);
  EXPECT_EQ(fabric.total_bytes(), kA + 2 * kB + kC);
}

TEST_F(FabricFixture, StatisticsAccumulate) {
  fabric.Send(0, 1, 100, [] {});
  fabric.Send(0, 2, 200, [] {});
  fabric.Send(1, 0, 50, [] {});
  sim.Run();
  EXPECT_EQ(fabric.bytes_out(0), 300u);
  EXPECT_EQ(fabric.bytes_in(0), 50u);
  EXPECT_EQ(fabric.bytes_in(1), 100u);
  EXPECT_EQ(fabric.messages_out(0), 2u);
  EXPECT_EQ(fabric.total_bytes(), 350u);
}

}  // namespace
}  // namespace rstore::sim
