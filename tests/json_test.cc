// Edge-case tests for the shared JSON parser (src/obs/json.h). Every
// downstream consumer — trace_check, rcheck_report, rtail, rlin — trusts
// this parser with machine-generated input plus whatever a human hands
// the CLI tools, so hostile/degenerate input must fail with a clean
// Status, never crash, hang, or blow the stack.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "obs/json.h"

namespace rstore::obs {
namespace {

// ------------------------------------------------------------- escapes --

TEST(JsonEscapes, SimpleEscapesDecode) {
  const auto r = ParseJson(R"("a\nb\tc\rd\be\ff\"g\\h\/i")");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->str, "a\nb\tc\rd\be\ff\"g\\h/i");
}

TEST(JsonEscapes, UnicodeEscapeKeptVerbatim) {
  // Documented contract: \uXXXX is preserved as its escape text, so
  // writers that emit only ASCII round-trip exactly.
  const auto r = ParseJson(R"("pre\u0041post")");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->str, "pre\\u0041post");
}

TEST(JsonEscapes, DanglingBackslashFails) {
  const auto r = ParseJson("\"abc\\");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kInvalidArgument);
}

TEST(JsonEscapes, ShortUnicodeEscapeFails) {
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());
  EXPECT_FALSE(ParseJson("\"\\u123").ok());
}

TEST(JsonEscapes, UnknownEscapeFails) {
  const auto r = ParseJson(R"("\q")");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown escape"), std::string::npos);
}

TEST(JsonEscapes, UnterminatedStringFails) {
  EXPECT_FALSE(ParseJson("\"never closed").ok());
  EXPECT_FALSE(ParseJson("\"").ok());
}

// ------------------------------------------------------------- nesting --

std::string Nested(int depth, char open, char close) {
  std::string s;
  s.append(static_cast<size_t>(depth), open);
  s.append(static_cast<size_t>(depth), close);
  return s;
}

TEST(JsonNesting, ModerateDepthParses) {
  const auto r = ParseJson(Nested(60, '[', ']'));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->Is(JsonValue::Type::kArray));
}

TEST(JsonNesting, ExcessiveDepthFailsCleanly) {
  // The depth cap must kick in as a Status long before the recursion
  // could threaten the stack.
  const auto arr = ParseJson(Nested(100000, '[', ']'));
  ASSERT_FALSE(arr.ok());
  EXPECT_NE(arr.status().message().find("nesting too deep"),
            std::string::npos);

  std::string obj;
  for (int i = 0; i < 100000; ++i) obj += "{\"k\":";
  obj += "0";
  for (int i = 0; i < 100000; ++i) obj += "}";
  EXPECT_FALSE(ParseJson(obj).ok());
}

TEST(JsonNesting, DepthCapBoundaryIsExact) {
  // ParseValue admits depth <= 64; the document nesting the cap allows
  // must parse and one level deeper must not, so the cap can't drift
  // silently.
  int deepest_ok = 0;
  for (int d = 1; d <= 70; ++d) {
    if (ParseJson(Nested(d, '[', ']')).ok()) deepest_ok = d;
  }
  EXPECT_EQ(deepest_ok, 65);  // depth counter starts at 0 => 65 brackets
}

// ------------------------------------------------------------- numbers --

TEST(JsonNumbers, OrdinaryForms) {
  EXPECT_DOUBLE_EQ(ParseJson("0")->number, 0.0);
  EXPECT_DOUBLE_EQ(ParseJson("-0.5e3")->number, -500.0);
  EXPECT_DOUBLE_EQ(ParseJson("1E2")->number, 100.0);
}

TEST(JsonNumbers, OverlongNumberDoesNotCrash) {
  // 1 followed by 400 zeros overflows double; strtod saturates to
  // infinity and the parse either succeeds with inf or fails — both are
  // acceptable, crashing or mangling memory is not.
  std::string huge = "1";
  huge.append(400, '0');
  const auto r = ParseJson(huge);
  if (r.ok()) {
    EXPECT_TRUE(std::isinf(r->number));
  }

  const auto exp = ParseJson("1e999999");
  if (exp.ok()) {
    EXPECT_TRUE(std::isinf(exp->number));
  }

  std::string digits;
  digits.append(100000, '9');
  const auto wide = ParseJson(digits);
  if (wide.ok()) {
    EXPECT_TRUE(std::isinf(wide->number));
  }
}

TEST(JsonNumbers, MalformedNumbersFail) {
  for (const char* bad : {"1.2.3", "--1", "+", "-", ".", "1e", "1e+",
                          "0x10", "1..e", "e9"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << bad;
  }
}

// ----------------------------------------------------- truncation fuzz --

TEST(JsonTruncation, EveryPrefixFailsCleanly) {
  // Chop a representative document at every byte boundary. Prefixes that
  // happen to stay valid (e.g. "12" of "123") may parse; everything else
  // must return a Status. The assertion is simply that we get an answer.
  const std::string doc =
      R"({"spans":[{"name":"op","ts":1.5,"ok":true,"tags":null},)"
      R"({"name":"q\"x","ts":-2e3,"deep":[[[{"k":"v"}]]]}],"n":3})";
  ASSERT_TRUE(ParseJson(doc).ok());
  for (size_t len = 0; len < doc.size(); ++len) {
    const auto r = ParseJson(std::string_view(doc).substr(0, len));
    if (r.ok()) {
      // Only a complete scalar prefix could legitimately parse; a doc
      // starting with '{' never has a valid proper prefix.
      ADD_FAILURE() << "prefix of length " << len << " parsed";
    }
  }
}

TEST(JsonTruncation, SingleByteCorruptionDoesNotCrash) {
  const std::string doc = R"({"a":[1,true,"x\n"],"b":{"c":null}})";
  ASSERT_TRUE(ParseJson(doc).ok());
  for (size_t i = 0; i < doc.size(); ++i) {
    for (const char c : {'\\', '"', '{', '}', '[', ']', ',', ':', '\0',
                         '\x7f'}) {
      std::string mutated = doc;
      mutated[i] = c;
      (void)ParseJson(mutated);  // any Status is fine; crashing is not
    }
  }
}

TEST(JsonTruncation, EmptyAndWhitespaceOnlyFail) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("   \t\n  ").ok());
}

TEST(JsonTruncation, TrailingGarbageFails) {
  const auto r = ParseJson("{} x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos);
}

// ------------------------------------------------------------- objects --

TEST(JsonObjects, DuplicateKeysLastWins) {
  const auto r = ParseJson(R"({"k":1,"k":2})");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->object.size(), 2u);  // insertion order preserved
  const JsonValue* v = r->Find("k");
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->number, 2.0);
}

TEST(JsonObjects, MissingColonOrCommaFails) {
  EXPECT_FALSE(ParseJson(R"({"k" 1})").ok());
  EXPECT_FALSE(ParseJson(R"({"k":1 "j":2})").ok());
  EXPECT_FALSE(ParseJson(R"({1:2})").ok());
  EXPECT_FALSE(ParseJson(R"([1 2])").ok());
}

// ---------------------------------------------------------------- file --

TEST(JsonFile, MissingFileIsNotFound) {
  const auto r = ParseJsonFile("/nonexistent/rstore-json-test");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kNotFound);
}

TEST(JsonFile, RoundTripsThroughDisk) {
  const std::string path = testing::TempDir() + "json_test_roundtrip.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const std::string doc = R"({"a":[1,2,3],"b":"x"})";
    ASSERT_EQ(std::fwrite(doc.data(), 1, doc.size(), f), doc.size());
    std::fclose(f);
  }
  const auto r = ParseJsonFile(path);
  ASSERT_TRUE(r.ok()) << r.status();
  const JsonValue* a = r->Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->array.size(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rstore::obs
