// Tests for RKV, the key-value layer on RStore: CRUD semantics, probing
// and tombstones, capacity limits, multi-client sharing, concurrent
// writers (seqlock), and a randomized model-based sweep against
// std::map.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "kv/kv.h"

namespace rstore::kv {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

ClusterConfig KvCluster(uint32_t clients = 1) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = clients;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

std::vector<std::byte> Bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string Str(const std::vector<std::byte>& b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

TEST(KvTest, PutGetDeleteRoundTrip) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok()) << kv.status();
    ASSERT_TRUE((*kv)->Put("alpha", "one").ok());
    ASSERT_TRUE((*kv)->Put("beta", "two").ok());
    auto a = (*kv)->Get("alpha");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(Str(*a), "one");
    EXPECT_EQ(Str(*(*kv)->Get("beta")), "two");
    EXPECT_EQ((*kv)->Get("gamma").code(), ErrorCode::kNotFound);
    ASSERT_TRUE((*kv)->Delete("alpha").ok());
    EXPECT_EQ((*kv)->Get("alpha").code(), ErrorCode::kNotFound);
    EXPECT_EQ((*kv)->Delete("alpha").code(), ErrorCode::kNotFound);
    EXPECT_EQ(Str(*(*kv)->Get("beta")), "two");
  });
}

TEST(KvTest, OverwriteReplacesValue) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("k", "v1").ok());
    ASSERT_TRUE((*kv)->Put("k", "a-considerably-longer-second-value").ok());
    EXPECT_EQ(Str(*(*kv)->Get("k")), "a-considerably-longer-second-value");
    ASSERT_TRUE((*kv)->Put("k", "v3").ok());
    EXPECT_EQ(Str(*(*kv)->Get("k")), "v3");
  });
}

TEST(KvTest, BinaryKeysAndValues) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok());
    std::string key("\x00\x01\xff\x7f", 4);
    std::vector<std::byte> value(100);
    Rng rng(5);
    rng.Fill(value.data(), value.size());
    ASSERT_TRUE((*kv)->Put(key, value).ok());
    auto got = (*kv)->Get(key);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, value);
  });
}

TEST(KvTest, OversizedValueRejected) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok());
    std::vector<std::byte> big((*kv)->max_value_bytes() + 1);
    EXPECT_EQ((*kv)->Put("k", big).code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ((*kv)->Put("", Bytes("x")).code(),
              ErrorCode::kInvalidArgument);
    // Exactly at capacity (minus the key) fits.
    std::vector<std::byte> fits((*kv)->max_value_bytes() - 1);
    EXPECT_TRUE((*kv)->Put("k", fits).ok());
  });
}

TEST(KvTest, CollisionsProbeAndTombstonesDoNotBreakChains) {
  // Tiny table: 4 buckets forces collisions quickly.
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    KvOptions opts;
    opts.buckets = 4;
    opts.max_probe = 4;
    auto kv = KvStore::Create(client, "tiny", opts);
    ASSERT_TRUE(kv.ok());
    // Fill the table completely.
    std::vector<std::string> keys = {"a", "b", "c", "d"};
    for (const auto& k : keys) {
      ASSERT_TRUE((*kv)->Put(k, "v" + k).ok()) << k;
    }
    // Table full now.
    EXPECT_EQ((*kv)->Put("e", "x").code(), ErrorCode::kOutOfMemory);
    // Delete one in the middle of some chain, the rest must stay
    // reachable (tombstones keep probes alive).
    ASSERT_TRUE((*kv)->Delete("b").ok());
    for (const auto& k : keys) {
      if (k == "b") continue;
      auto got = (*kv)->Get(k);
      ASSERT_TRUE(got.ok()) << k;
      EXPECT_EQ(Str(*got), "v" + k);
    }
    // The tombstone is reusable.
    EXPECT_TRUE((*kv)->Put("e", "ve").ok());
    EXPECT_EQ(Str(*(*kv)->Get("e")), "ve");
  });
}

TEST(KvTest, OpenSeesExistingTable) {
  TestCluster cluster(KvCluster(2));
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "shared");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("city", "Zurich").ok());
    ASSERT_TRUE(client.NotifyInc("written").ok());
  });
  bool verified = false;
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("written", 1).ok());
    auto kv = KvStore::Open(client, "shared");
    ASSERT_TRUE(kv.ok()) << kv.status();
    EXPECT_EQ((*kv)->options().buckets, KvOptions{}.buckets);
    auto got = (*kv)->Get("city");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(Str(*got), "Zurich");
    verified = true;
  });
  cluster.sim().Run();
  EXPECT_TRUE(verified);
}

TEST(KvTest, OpenRejectsNonTableRegion) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("blob", 1 << 20).ok());
    EXPECT_EQ(KvStore::Open(client, "blob").code(),
              ErrorCode::kInvalidArgument);
    EXPECT_EQ(KvStore::Open(client, "missing").code(),
              ErrorCode::kNotFound);
  });
}

TEST(KvTest, ConcurrentWritersOnDisjointKeys) {
  constexpr uint32_t kClients = 3;
  constexpr int kPerClient = 40;
  TestCluster cluster(KvCluster(kClients));
  int done = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      Result<std::unique_ptr<KvStore>> kv(ErrorCode::kInternal, "");
      if (c == 0) {
        kv = KvStore::Create(client, "shared");
        ASSERT_TRUE(client.NotifyInc("ready").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
        kv = KvStore::Open(client, "shared");
      }
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < kPerClient; ++i) {
        const std::string key =
            "c" + std::to_string(c) + "-" + std::to_string(i);
        ASSERT_TRUE((*kv)->Put(key, "val" + key).ok()) << key;
      }
      ASSERT_TRUE(client.NotifyInc("wrote").ok());
      ASSERT_TRUE(client.WaitNotify("wrote", kClients).ok());
      // Every client verifies everyone's writes.
      for (uint32_t c2 = 0; c2 < kClients; ++c2) {
        for (int i = 0; i < kPerClient; ++i) {
          const std::string key =
              "c" + std::to_string(c2) + "-" + std::to_string(i);
          auto got = (*kv)->Get(key);
          ASSERT_TRUE(got.ok()) << key << ": " << got.status();
          ASSERT_EQ(Str(*got), "val" + key);
        }
      }
      ++done;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(done, static_cast<int>(kClients));
}

TEST(KvTest, ConcurrentWritersOnTheSameKeyConverge) {
  constexpr uint32_t kClients = 3;
  TestCluster cluster(KvCluster(kClients));
  int done = 0;
  for (uint32_t c = 0; c < kClients; ++c) {
    cluster.SpawnClient(c, [&, c](RStoreClient& client) {
      Result<std::unique_ptr<KvStore>> kv(ErrorCode::kInternal, "");
      if (c == 0) {
        kv = KvStore::Create(client, "shared");
        ASSERT_TRUE(client.NotifyInc("ready").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("ready", 1).ok());
        kv = KvStore::Open(client, "shared");
      }
      ASSERT_TRUE(kv.ok());
      for (int i = 0; i < 30; ++i) {
        Status st =
            (*kv)->Put("hot", "from-" + std::to_string(c) + "-" +
                                  std::to_string(i));
        // kAborted (lost race for a fresh slot) is legal; retry.
        if (!st.ok()) {
          ASSERT_EQ(st.code(), ErrorCode::kAborted) << st;
          --i;
        }
      }
      ASSERT_TRUE(client.NotifyInc("wrote").ok());
      ASSERT_TRUE(client.WaitNotify("wrote", kClients).ok());
      auto got = (*kv)->Get("hot");
      ASSERT_TRUE(got.ok()) << got.status();
      // Value must be one of the written values, never torn.
      const std::string v = Str(*got);
      EXPECT_EQ(v.rfind("from-", 0), 0u) << v;
      ++done;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(done, static_cast<int>(kClients));
}

// Model-based sweep against std::map.
class KvModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvModelTest, MatchesStdMapUnderRandomOps) {
  const uint64_t seed = GetParam();
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    KvOptions opts;
    opts.buckets = 256;
    opts.max_probe = 16;
    auto kv = KvStore::Create(client, "model", opts);
    ASSERT_TRUE(kv.ok());
    std::map<std::string, std::string> model;
    Rng rng(seed);
    for (int step = 0; step < 400; ++step) {
      const std::string key = "k" + std::to_string(rng.NextBelow(64));
      const double dice = rng.NextDouble();
      if (dice < 0.5) {
        const std::string value =
            "v" + std::to_string(rng.Next() % 100000);
        Status st = (*kv)->Put(key, value);
        if (st.ok()) {
          model[key] = value;
        } else {
          ASSERT_EQ(st.code(), ErrorCode::kOutOfMemory) << st;
        }
      } else if (dice < 0.75) {
        Status st = (*kv)->Delete(key);
        if (model.contains(key)) {
          ASSERT_TRUE(st.ok()) << key << " " << st;
          model.erase(key);
        } else {
          ASSERT_EQ(st.code(), ErrorCode::kNotFound);
        }
      } else {
        auto got = (*kv)->Get(key);
        if (model.contains(key)) {
          ASSERT_TRUE(got.ok()) << key << " " << got.status();
          ASSERT_EQ(Str(*got), model[key]) << "step " << step;
        } else {
          ASSERT_EQ(got.code(), ErrorCode::kNotFound) << key;
        }
      }
    }
    // Full audit.
    for (const auto& [key, value] : model) {
      auto got = (*kv)->Get(key);
      ASSERT_TRUE(got.ok()) << key;
      ASSERT_EQ(Str(*got), value);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvModelTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(KvTest, StatsCountOperations) {
  TestCluster cluster(KvCluster());
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("a", "1").ok());
    (void)(*kv)->Get("a");
    (void)(*kv)->Get("missing-key");
    (void)(*kv)->Delete("a");
    EXPECT_EQ((*kv)->stats().puts, 1u);
    EXPECT_EQ((*kv)->stats().gets, 2u);
    EXPECT_EQ((*kv)->stats().deletes, 1u);
    EXPECT_GE((*kv)->stats().probe_reads, 4u);
  });
}

}  // namespace
}  // namespace rstore::kv
