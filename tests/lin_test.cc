// Tests for rlin, the per-key linearizability checker (check/lin.h), and
// its wiring: the Wing–Gong search over per-key register subhistories
// (clean histories, stale reads, concurrent reads, pending maybe-applied
// writes, absent semantics), counterexample minimization, the JSON dump
// round-tripping through obs/json.h, capture from the KvStore client path
// and the load engine (including the satellite guarantee that deadline-
// shed and never-admitted ops never appear as completed responses), the
// zero-probe-effect contract, and the Explorer integration that finds the
// planted stale-cached-read workload under PCT and replays it
// deterministically.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/lin.h"
#include "core/cluster.h"
#include "explore/explorer.h"
#include "explore/workloads.h"
#include "kv/kv.h"
#include "load/engine.h"
#include "obs/json.h"
#include "sim/time.h"

namespace rstore {
namespace {

using check::kLinAbsent;
using check::LinChecker;
using check::LinOpKind;
using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

constexpr LinOpKind kR = LinOpKind::kRead;
constexpr LinOpKind kW = LinOpKind::kWrite;

uint64_t Dig(const char* s) { return LinChecker::Digest(s, __builtin_strlen(s)); }

// ------------------------------------------------------- checker core --

TEST(LinCheckerTest, CleanSequentialHistoryPasses) {
  LinChecker lin;
  const uint64_t v1 = Dig("v1"), v2 = Dig("v2");
  lin.RecordOp(0, kW, 7, v1, 10, 20);
  lin.RecordOp(1, kR, 7, v1, 30, 40);
  lin.RecordOp(0, kW, 7, v2, 50, 60);
  lin.RecordOp(1, kR, 7, v2, 70, 80);
  lin.RecordOp(2, kR, 9, kLinAbsent, 15, 25);  // untouched key reads absent
  lin.Finalize();
  EXPECT_EQ(lin.violation_count(), 0u);
  EXPECT_EQ(lin.stats().keys_checked, 2u);
  EXPECT_EQ(lin.stats().keys_inconclusive, 0u);
  EXPECT_EQ(lin.op_count(), 5u);
}

TEST(LinCheckerTest, StaleReadAfterWriteIsViolation) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  lin.RecordInit(7, v0);
  lin.RecordOp(0, kW, 7, v1, 10, 20);
  lin.RecordOp(1, kR, 7, v0, 30, 40);  // inv after the write's resp: stale
  lin.Finalize();
  ASSERT_EQ(lin.violation_count(), 1u);
  const check::LinViolation& v = lin.violations()[0];
  EXPECT_EQ(v.key, 7u);
  EXPECT_EQ(v.history_ops, 2u);
  EXPECT_LE(v.ops.size(), 2u);
  EXPECT_FALSE(v.detail.empty());
}

TEST(LinCheckerTest, ConcurrentReadsMaySeeEitherValue) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  lin.RecordInit(7, v0);
  lin.RecordOp(0, kW, 7, v1, 10, 50);
  lin.RecordOp(1, kR, 7, v0, 20, 30);  // linearizes before the write
  lin.RecordOp(2, kR, 7, v1, 25, 35);  // linearizes after the write
  lin.Finalize();
  EXPECT_EQ(lin.violation_count(), 0u);
}

TEST(LinCheckerTest, ReadOfFutureValueIsViolation) {
  LinChecker lin;
  const uint64_t v1 = Dig("v1");
  lin.RecordOp(1, kR, 7, v1, 1, 5);  // resp before the write's inv
  lin.RecordOp(0, kW, 7, v1, 10, 20);
  lin.Finalize();
  EXPECT_EQ(lin.violation_count(), 1u);
}

TEST(LinCheckerTest, PendingWriteMayApplyOrNot) {
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  {
    // Applied: a later read sees it.
    LinChecker lin;
    lin.RecordInit(7, v0);
    lin.RecordPending(0, kW, 7, v1, 10);
    lin.RecordOp(1, kR, 7, v1, 20, 30);
    lin.Finalize();
    EXPECT_EQ(lin.violation_count(), 0u);
  }
  {
    // Not applied: a later read still sees the old value.
    LinChecker lin;
    lin.RecordInit(7, v0);
    lin.RecordPending(0, kW, 7, v1, 10);
    lin.RecordOp(1, kR, 7, v0, 20, 30);
    lin.Finalize();
    EXPECT_EQ(lin.violation_count(), 0u);
  }
  {
    // But it cannot un-apply: v1 then v0 has no witness order.
    LinChecker lin;
    lin.RecordInit(7, v0);
    lin.RecordPending(0, kW, 7, v1, 10);
    lin.RecordOp(1, kR, 7, v1, 20, 30);
    lin.RecordOp(1, kR, 7, v0, 40, 50);
    lin.Finalize();
    EXPECT_EQ(lin.violation_count(), 1u);
  }
}

TEST(LinCheckerTest, DeleteIsWriteOfAbsent) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0");
  lin.RecordInit(7, v0);
  lin.RecordOp(0, kW, 7, kLinAbsent, 10, 20);  // delete
  lin.RecordOp(1, kR, 7, kLinAbsent, 30, 40);  // not-found: fine
  lin.RecordOp(1, kR, 7, v0, 50, 60);          // resurrection: violation
  lin.Finalize();
  ASSERT_EQ(lin.violation_count(), 1u);
  EXPECT_EQ(lin.violations()[0].key, 7u);
}

TEST(LinCheckerTest, ViolationsAttributePerKey) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  // Key 3 is broken, key 4 is fine.
  lin.RecordInit(3, v0);
  lin.RecordOp(0, kW, 3, v1, 10, 20);
  lin.RecordOp(1, kR, 3, v0, 30, 40);
  lin.RecordOp(0, kW, 4, v1, 10, 20);
  lin.RecordOp(1, kR, 4, v1, 30, 40);
  lin.Finalize();
  ASSERT_EQ(lin.violation_count(), 1u);
  EXPECT_EQ(lin.violations()[0].key, 3u);
  EXPECT_EQ(lin.stats().keys_checked, 2u);
}

TEST(LinCheckerTest, MinimizationDropsIrrelevantOps) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  lin.RecordInit(7, v0);
  // Padding: a long clean prefix of reads that match the register.
  for (uint64_t i = 0; i < 40; ++i) {
    lin.RecordOp(2, kR, 7, v0, 100 + 10 * i, 105 + 10 * i);
  }
  lin.RecordOp(0, kW, 7, v1, 1000, 1010);
  lin.RecordOp(1, kR, 7, v0, 1020, 1030);  // the stale read
  lin.Finalize();
  ASSERT_EQ(lin.violation_count(), 1u);
  EXPECT_EQ(lin.violations()[0].history_ops, 42u);
  EXPECT_LE(lin.violations()[0].ops.size(), 3u);
}

TEST(LinCheckerTest, GreedyReadsAndMemoKeepSearchSmall) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0");
  lin.RecordInit(7, v0);
  for (uint64_t i = 0; i < 2000; ++i) {
    lin.RecordOp(static_cast<uint32_t>(i % 5), kR, 7, v0, 10 * i, 10 * i + 8);
  }
  lin.Finalize();
  EXPECT_EQ(lin.violation_count(), 0u);
  EXPECT_GT(lin.stats().greedy_reads, 0u);
  // Linear in the history, not exponential.
  EXPECT_LT(lin.stats().states_explored, 10000u);
}

TEST(LinCheckerTest, DumpJsonRoundTripsThroughSharedParser) {
  LinChecker lin;
  const uint64_t v0 = Dig("v0"), v1 = Dig("v1");
  lin.RecordInit(7, v0);
  lin.RecordOp(0, kW, 7, v1, 10, 20);
  lin.RecordOp(1, kR, 7, v0, 30, 40);
  lin.RecordPending(2, kW, 7, Dig("v2"), 35);
  lin.Finalize();
  ASSERT_EQ(lin.violation_count(), 1u);

  std::ostringstream os;
  lin.DumpJson(os);
  auto root = obs::ParseJson(os.str());
  ASSERT_TRUE(root.ok()) << root.status();
  EXPECT_EQ(root->Find("tool")->str, "rlin");
  EXPECT_EQ(static_cast<uint64_t>(root->Find("violation_count")->number), 1u);
  const obs::JsonValue* violations = root->Find("violations");
  ASSERT_TRUE(violations != nullptr &&
              violations->Is(obs::JsonValue::Type::kArray));
  ASSERT_EQ(violations->array.size(), 1u);
  const obs::JsonValue& v = violations->array[0];
  EXPECT_EQ(v.Find("key")->str, "0x7");  // 64-bit fields are hex strings
  const obs::JsonValue* ops = v.Find("ops");
  ASSERT_TRUE(ops != nullptr && ops->Is(obs::JsonValue::Type::kArray));
  ASSERT_GE(ops->array.size(), 2u);
  for (const obs::JsonValue& op : ops->array) {
    const std::string kind = op.Find("kind")->str;
    EXPECT_TRUE(kind == "read" || kind == "write");
    EXPECT_EQ(op.Find("digest")->str.rfind("0x", 0), 0u);
    // Pending ops emit resp_ns as null, completed ones as a number.
    const bool pending = op.Find("pending")->boolean;
    EXPECT_EQ(op.Find("resp_ns")->Is(obs::JsonValue::Type::kNull), pending);
  }
}

// ---------------------------------------------------- KvStore capture --

ClusterConfig SmallCluster(uint32_t host_threads = 0) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 1;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.host_threads = host_threads;
  return cfg;
}

TEST(LinKvTest, ClientPathRecordsCompletedOpsAndStaysClean) {
  LinChecker lin;
  TestCluster cluster(SmallCluster());
  cluster.sim().AttachLinChecker(&lin);
  cluster.RunClient([&](RStoreClient& client) {
    auto kv = kv::KvStore::Create(client, "table");
    ASSERT_TRUE(kv.ok());
    ASSERT_TRUE((*kv)->Put("alpha", "one").ok());
    EXPECT_TRUE((*kv)->Get("alpha").ok());
    EXPECT_EQ((*kv)->Get("missing").code(), ErrorCode::kNotFound);
    ASSERT_TRUE((*kv)->Put("alpha", "two").ok());
    EXPECT_TRUE((*kv)->Get("alpha").ok());
    ASSERT_TRUE((*kv)->Delete("alpha").ok());
    EXPECT_EQ((*kv)->Get("alpha").code(), ErrorCode::kNotFound);
  });
  lin.Finalize();
  // Every completed CRUD op above is in the history: 2 puts, 4 gets
  // (2 found + 2 not-found), 1 delete.
  EXPECT_EQ(lin.op_count(), 7u);
  EXPECT_EQ(lin.violation_count(), 0u)
      << "false positive on a sequential KV run";
}

// ------------------------------------------------- load-engine capture --

load::LoadOptions SmallLoad() {
  load::LoadOptions o;
  o.sessions = 64;
  o.offered_load = 100e3;
  o.duration = sim::Millis(2);
  o.preload_keys = 1024;
  o.mix = load::WorkloadMix::Ycsb('a');
  o.seed = 5;
  return o;
}

struct EngineRun {
  load::EngineStats stats;
  uint64_t virtual_nanos = 0;
  size_t lin_ops = 0;
  size_t lin_violations = 0;
};

EngineRun RunEngine(const load::LoadOptions& opts, bool with_lin) {
  LinChecker lin;
  TestCluster cluster(SmallCluster());
  if (with_lin) cluster.sim().AttachLinChecker(&lin);
  EngineRun r;
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(load::LoadEngine::PreloadTable(client, "t", opts).ok());
    load::LoadEngine engine(client, "t", opts, 0, 1);
    ASSERT_TRUE(engine.Run().ok());
    r.stats = engine.stats();
  });
  r.virtual_nanos = cluster.sim().NowNanos();
  if (with_lin) {
    lin.Finalize();
    r.lin_ops = lin.op_count();
    r.lin_violations = lin.violation_count();
  }
  return r;
}

TEST(LinEngineTest, HistoryIsLinearizableAndCoversCompletedOps) {
  const EngineRun r = RunEngine(SmallLoad(), /*with_lin=*/true);
  EXPECT_GT(r.stats.completed, 100u);
  EXPECT_EQ(r.stats.errors, 0u);
  // YCSB A has no scans, so every completed op is in the history.
  EXPECT_EQ(r.lin_ops, r.stats.completed);
  EXPECT_EQ(r.lin_violations, 0u)
      << "false positive on the real engine history";
}

TEST(LinEngineTest, ShedAndDeferredOpsNeverAppearAsResponses) {
  // Overload hard enough that admission defers and the deadline sheds.
  // Shed ops and never-admitted deferred ops never reach completion, so
  // they must not appear in the captured history — a shed op that leaked
  // into the history as a completed response would poison the check.
  load::LoadOptions opts = SmallLoad();
  opts.offered_load = 4e6;
  opts.shed_deadline = sim::Millis(1);
  const EngineRun r = RunEngine(opts, /*with_lin=*/true);
  EXPECT_GT(r.stats.shed, 0u);
  EXPECT_LT(r.stats.completed, r.stats.arrivals);
  // Completed ops are all recorded; failed ops contribute at most one
  // pending maybe-write each; shed ops contribute nothing.
  EXPECT_GE(r.lin_ops, r.stats.completed);
  EXPECT_LE(r.lin_ops, r.stats.completed + r.stats.errors);
  EXPECT_LE(r.lin_ops, r.stats.arrivals - r.stats.shed);
  EXPECT_EQ(r.lin_violations, 0u);
}

TEST(LinEngineTest, AttachingTheCheckerHasZeroProbeEffect) {
  load::LoadOptions opts = SmallLoad();
  opts.offered_load = 400e3;  // some queueing, so ordering is stressed
  const EngineRun off = RunEngine(opts, /*with_lin=*/false);
  const EngineRun on = RunEngine(opts, /*with_lin=*/true);
  EXPECT_EQ(on.virtual_nanos, off.virtual_nanos);
  EXPECT_EQ(on.stats.completed, off.stats.completed);
  EXPECT_GT(on.lin_ops, 0u);
}

// --------------------------------------------------- Explorer oracle --

TEST(LinExploreTest, PlantedStaleReadIsCleanAtBaseline) {
  const auto all = explore::BuiltinWorkloads();
  const explore::NamedWorkload* w =
      explore::FindWorkload(all, "stale-cached-read");
  ASSERT_NE(w, nullptr);
  explore::ExploreOptions opts;
  opts.policy = "baseline";
  opts.runs = 1;
  const explore::ExploreReport report =
      explore::Explorer(opts).Explore(w->workload);
  EXPECT_FALSE(report.violation_found)
      << "the stale branch must be unreachable without injected delay";
}

TEST(LinExploreTest, PctFindsPlantedStaleReadAndReplaysDeterministically) {
  const auto all = explore::BuiltinWorkloads();
  const explore::NamedWorkload* w =
      explore::FindWorkload(all, "stale-cached-read");
  ASSERT_NE(w, nullptr);
  explore::ExploreOptions opts;
  opts.policy = "pct";
  opts.pct_depth = 3;
  opts.seed = 1;
  opts.runs = 64;  // bounded budget; in practice it fires within a few
  opts.max_delay_ns = 120000;
  const explore::ExploreReport report =
      explore::Explorer(opts).Explore(w->workload);
  ASSERT_TRUE(report.violation_found);
  EXPECT_GE(report.violating.lin_violation_count, 1u);
  EXPECT_FALSE(report.violating.lin_report_json.empty());
  ASSERT_FALSE(report.violating.violation_sigs.empty());
  const std::string sig = report.violating.violation_sigs[0];
  EXPECT_EQ(sig, "lin@key0x57a1e");  // schedule-independent identity

  // The minimized trace still reproduces the same violation, and replay
  // is deterministic: two replays agree bit-for-bit.
  const explore::RunOutcome a = explore::Explorer::Replay(w->workload,
                                                          report.minimized);
  const explore::RunOutcome b = explore::Explorer::Replay(w->workload,
                                                          report.minimized);
  ASSERT_EQ(a.violation_count, 1u);
  EXPECT_EQ(a.violation_sigs, report.violating.violation_sigs);
  EXPECT_EQ(a.final_vtime, b.final_vtime);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.violation_sigs, b.violation_sigs);
  EXPECT_EQ(a.lin_report_json, b.lin_report_json);

  // The counterexample JSON parses with the shared parser.
  auto parsed = obs::ParseJson(a.lin_report_json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("tool")->str, "rlin");
}

TEST(LinExploreTest, ExistingWorkloadsAreLinClean) {
  // The rcheck workloads record no KV ops, and the fenced handoff is
  // correct — rlin must stay silent on all of them (zero false
  // positives), including under exploration.
  for (const char* name : {"fenced-handoff", "atomic-counter"}) {
    const auto all = explore::BuiltinWorkloads();
    const explore::NamedWorkload* w = explore::FindWorkload(all, name);
    ASSERT_NE(w, nullptr);
    explore::ExploreOptions opts;
    opts.policy = "random";
    opts.seed = 3;
    opts.runs = 4;
    opts.max_delay_ns = 120000;
    const explore::ExploreReport report =
        explore::Explorer(opts).Explore(w->workload);
    EXPECT_EQ(report.violation_found ? report.violating.lin_violation_count
                                     : 0u,
              0u)
        << name;
  }
}

}  // namespace
}  // namespace rstore
