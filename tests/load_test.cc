// Tests for src/load, the open-loop massive-fan-in serving stack:
// admission control (window / FIFO deferral / shed), workload vocabulary
// (YCSB mixes, arrival curves), session-to-QP multiplexing ratios, the
// LoadEngine state machines end to end on a small cluster, determinism
// across partitioned-scheduler host thread counts, rcheck cleanliness,
// coordinated-omission-safe latency anchoring under overload, rtrace
// per-op causal tracing (stage sums, slowest-K reservoir, probe-effect
// bit-identity), and the space-saving hot-key sketch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "check/check.h"
#include "core/cluster.h"
#include "load/admission.h"
#include "load/engine.h"
#include "load/hotkeys.h"
#include "load/session_mux.h"
#include "load/workload.h"
#include "obs/rtrace.h"
#include "sim/time.h"

namespace rstore::load {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

// ------------------------------------------------------------ Admission --
TEST(AdmissionTest, WindowDefersThenShedsAndReleasesFifo) {
  AdmissionController ac(/*servers=*/2, /*enabled=*/true,
                         /*window_per_server=*/2, /*max_deferred=*/2);
  EXPECT_EQ(ac.TryAdmit(0, 10), Admit::kAdmit);
  EXPECT_EQ(ac.TryAdmit(0, 11), Admit::kAdmit);
  EXPECT_EQ(ac.TryAdmit(0, 12), Admit::kDefer);
  EXPECT_EQ(ac.TryAdmit(0, 13), Admit::kDefer);
  EXPECT_EQ(ac.TryAdmit(0, 14), Admit::kShed);
  EXPECT_EQ(ac.inflight(0), 2u);
  EXPECT_EQ(ac.deferred(0), 2u);
  // Server 1 is an independent window.
  EXPECT_EQ(ac.TryAdmit(1, 20), Admit::kAdmit);
  // Releases re-admit deferred sessions in FIFO order, keeping the
  // in-flight count at the window.
  EXPECT_EQ(ac.Release(0), 12);
  EXPECT_EQ(ac.inflight(0), 2u);
  EXPECT_EQ(ac.Release(0), 13);
  EXPECT_EQ(ac.Release(0), -1);
  EXPECT_EQ(ac.inflight(0), 1u);
  EXPECT_EQ(ac.stats().admitted, 3u);
  EXPECT_EQ(ac.stats().deferred, 2u);
  EXPECT_EQ(ac.stats().shed, 1u);
  EXPECT_EQ(ac.stats().inflight_high_water, 2u);
  EXPECT_EQ(ac.stats().deferred_high_water, 2u);
}

TEST(AdmissionTest, DisabledPassesThroughButStillTracks) {
  AdmissionController ac(1, /*enabled=*/false, /*window_per_server=*/1,
                         /*max_deferred=*/1);
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(ac.TryAdmit(0, s), Admit::kAdmit);
  }
  EXPECT_EQ(ac.inflight(0), 8u);
  EXPECT_EQ(ac.stats().inflight_high_water, 8u);
  EXPECT_EQ(ac.stats().deferred, 0u);
  EXPECT_EQ(ac.stats().shed, 0u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ac.Release(0), -1);
  EXPECT_TRUE(ac.idle());
}

// ------------------------------------------------------------- Workload --
TEST(WorkloadMixTest, PickTracksNamedMixFractions) {
  Rng rng(3);
  const WorkloadMix a = WorkloadMix::Ycsb('a');
  int reads = 0, updates = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const OpType op = a.Pick(rng);
    if (op == OpType::kRead) ++reads;
    if (op == OpType::kUpdate) ++updates;
  }
  EXPECT_EQ(reads + updates, kDraws);  // A is read/update only
  EXPECT_NEAR(reads, kDraws / 2, kDraws / 20);

  const WorkloadMix e = WorkloadMix::Ycsb('e');
  int scans = 0, inserts = 0;
  for (int i = 0; i < kDraws; ++i) {
    const OpType op = e.Pick(rng);
    if (op == OpType::kScan) ++scans;
    if (op == OpType::kInsert) ++inserts;
  }
  EXPECT_EQ(scans + inserts, kDraws);
  EXPECT_NEAR(scans, kDraws * 95 / 100, kDraws / 20);
}

TEST(ArrivalCurveTest, ShapesModulateThePeakRate) {
  const double peak = 1e6;
  const sim::Nanos window = sim::Millis(10);
  ArrivalCurve constant;
  EXPECT_DOUBLE_EQ(constant.RateAt(peak, 0, window), peak);
  EXPECT_DOUBLE_EQ(constant.RateAt(peak, window / 2, window), peak);

  ArrivalCurve ramp;
  ramp.shape = ArrivalShape::kRamp;
  ramp.ramp_start_fraction = 0.1;
  EXPECT_NEAR(ramp.RateAt(peak, 0, window), 0.1 * peak, 1e-6 * peak);
  EXPECT_NEAR(ramp.RateAt(peak, window, window), peak, 1e-6 * peak);
  EXPECT_LT(ramp.RateAt(peak, window / 4, window),
            ramp.RateAt(peak, window / 2, window));

  ArrivalCurve burst;
  burst.shape = ArrivalShape::kBurst;
  burst.burst_period = sim::Millis(1);
  burst.burst_duty = 0.2;
  burst.burst_multiplier = 3.0;
  burst.base_fraction = 0.5;
  // Inside the first 20% of a period: multiplied; after: base fraction.
  EXPECT_DOUBLE_EQ(burst.RateAt(peak, sim::Micros(100), window), 3.0 * peak);
  EXPECT_DOUBLE_EQ(burst.RateAt(peak, sim::Micros(600), window), 0.5 * peak);
}

// ----------------------------------------------------------- SessionMux --
TEST(SessionMuxTest, ConnectsBoundedPoolAndPinsSessionsToOneQp) {
  // QpIndexFor is the FIFO guarantee: a session's ops to one server must
  // ride one RC QP (post order == completion order on an RC QP). Connect
  // a real pool inside a cluster and pin the mapping and pool size.
  constexpr uint32_t kQpPerServer = 2, kSessions = 1000;
  core::ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 1;
  cfg.server_capacity = 16ULL << 20;
  core::TestCluster cluster(cfg);
  std::vector<uint32_t> servers;
  for (uint32_t i = 0; i < cfg.memory_servers; ++i) {
    servers.push_back(cluster.server_node(i).id());
  }
  cluster.RunClient([&](RStoreClient& client) {
    SessionMux mux(client.device());
    ASSERT_TRUE(mux.Connect(servers, kQpPerServer).ok());
    // Bounded pool: exactly qp_per_server QPs per memory server.
    ASSERT_EQ(mux.qp_count(), cfg.memory_servers * kQpPerServer);
    for (uint32_t server = 0; server < cfg.memory_servers; ++server) {
      for (uint32_t s = 0; s < kSessions; ++s) {
        const uint32_t qp = mux.QpIndexFor(server, s);
        // Stable: the same (server, session) always lands on the same QP.
        EXPECT_EQ(qp, mux.QpIndexFor(server, s));
        // And inside that server's QP block.
        EXPECT_GE(qp, server * kQpPerServer);
        EXPECT_LT(qp, (server + 1) * kQpPerServer);
      }
    }
  });
  // 1000 sessions over 2 QPs per server = 500:1 per (server, engine).
  EXPECT_GE(kSessions / kQpPerServer, 100u);
}

// ----------------------------------------------------------- LoadEngine --
ClusterConfig SmallCluster(uint32_t host_threads = 0) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 1;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.host_threads = host_threads;
  return cfg;
}

LoadOptions SmallOptions() {
  LoadOptions o;
  o.sessions = 64;
  o.offered_load = 100e3;
  o.duration = sim::Millis(2);
  o.preload_keys = 1024;
  o.mix = WorkloadMix::Ycsb('a');
  o.seed = 5;
  return o;
}

struct RunResult {
  EngineStats stats;
  uint64_t virtual_nanos = 0;
};

RunResult RunEngine(const LoadOptions& opts, uint32_t host_threads = 0,
                    check::Checker* checker = nullptr) {
  TestCluster cluster(SmallCluster(host_threads));
  if (checker != nullptr) cluster.sim().AttachChecker(checker);
  RunResult r;
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(LoadEngine::PreloadTable(client, "t", opts).ok());
    LoadEngine engine(client, "t", opts, 0, 1);
    ASSERT_TRUE(engine.Run().ok());
    r.stats = engine.stats();
  });
  r.virtual_nanos = cluster.sim().NowNanos();
  return r;
}

TEST(LoadEngineTest, SmokeCompletesEveryArrivalAtLowLoad) {
  const RunResult r = RunEngine(SmallOptions());
  EXPECT_GT(r.stats.arrivals, 100u);
  EXPECT_EQ(r.stats.completed, r.stats.arrivals);
  EXPECT_EQ(r.stats.errors, 0u);
  EXPECT_EQ(r.stats.shed, 0u);
  EXPECT_EQ(r.stats.latency.count(), r.stats.completed);
  // Bounded QP pool: qp_per_server QPs per server that actually holds a
  // slab of the table (placement decides how many that is), never one
  // per session.
  EXPECT_GE(r.stats.qps, 2u);
  EXPECT_EQ(r.stats.qps % 2, 0u);
  EXPECT_LT(r.stats.qps, r.stats.sessions);
  EXPECT_EQ(r.stats.sessions, 64u);
  // Doorbell chains carry more than one WR on average once sessions
  // batch within a scheduling round.
  EXPECT_GT(r.stats.mux.wrs_posted, 0u);
  EXPECT_GE(r.stats.mux.wrs_posted, r.stats.mux.chains_posted);
}

TEST(LoadEngineTest, VirtualTimeIsBitIdenticalAcrossHostThreads) {
  LoadOptions opts = SmallOptions();
  opts.offered_load = 400e3;  // some queueing, so ordering is stressed
  const RunResult legacy = RunEngine(opts, 0);
  for (uint32_t threads : {1u, 2u}) {
    const RunResult part = RunEngine(opts, threads);
    EXPECT_EQ(part.virtual_nanos, legacy.virtual_nanos)
        << "host_threads=" << threads;
    EXPECT_EQ(part.stats.completed, legacy.stats.completed);
    EXPECT_EQ(part.stats.retries, legacy.stats.retries);
    EXPECT_EQ(part.stats.latency.Quantile(0.999),
              legacy.stats.latency.Quantile(0.999));
  }
}

TEST(LoadEngineTest, RcheckCleanUnderContention) {
  LoadOptions opts = SmallOptions();
  opts.offered_load = 400e3;
  check::Checker checker;
  const RunResult r = RunEngine(opts, 0, &checker);
  EXPECT_GT(r.stats.completed, 0u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " violations";
}

TEST(LoadEngineTest, OverloadShedsAndAdmissionBoundsCompletedTail) {
  LoadOptions opts = SmallOptions();
  opts.offered_load = 4e6;  // far past what 64 sessions can serve
  opts.shed_deadline = sim::Millis(1);
  const RunResult admit = RunEngine(opts);
  EXPECT_GT(admit.stats.shed, 0u);
  EXPECT_LT(admit.stats.completed, admit.stats.arrivals);
  // The in-flight window held.
  EXPECT_LE(admit.stats.admission.inflight_high_water,
            opts.window_per_server);

  LoadOptions open = opts;
  open.admission = false;
  const RunResult noadm = RunEngine(open);
  EXPECT_EQ(noadm.stats.shed, 0u);
  // The whole point of admission + deadline shed: the tail of *completed*
  // ops stays bounded while the uncontrolled arm's tail diverges with
  // the backlog.
  EXPECT_LT(admit.stats.latency.Quantile(0.999),
            noadm.stats.latency.Quantile(0.999));
}

TEST(LoadEngineTest, LatencyAnchorsAtIntendedTimeUnderBacklog) {
  // Coordinated-omission safety: with no admission control and heavy
  // overload, ops that arrived mid-window drain at the end — their
  // recorded latency must include the backlog wait from the *intended*
  // send time, so the max observed latency spans a large fraction of
  // the window even though per-op service time is microseconds.
  LoadOptions opts = SmallOptions();
  opts.offered_load = 4e6;
  opts.admission = false;
  const RunResult r = RunEngine(opts);
  EXPECT_GT(r.stats.completed, 0u);
  EXPECT_GT(r.stats.latency.max(),
            static_cast<uint64_t>(opts.duration) / 2);
}

TEST(LoadEngineTest, ChainWidthAdaptsToLoad) {
  // Load-adaptive doorbell batching: a busier engine processes more
  // arrivals and completions per scheduling round, so its flushes post
  // wider chains.
  LoadOptions low = SmallOptions();
  low.offered_load = 50e3;
  LoadOptions high = SmallOptions();
  high.offered_load = 2e6;
  const RunResult l = RunEngine(low);
  const RunResult h = RunEngine(high);
  const double lw = static_cast<double>(l.stats.mux.wrs_posted) /
                    static_cast<double>(l.stats.mux.chains_posted);
  const double hw = static_cast<double>(h.stats.mux.wrs_posted) /
                    static_cast<double>(h.stats.mux.chains_posted);
  EXPECT_GT(hw, lw);
}

// --------------------------------------------------------------- rtrace --
TEST(LoadEngineTest, RtraceStageSumsEqualTotalForEveryOp) {
  // The tentpole invariant: every op's per-stage nanoseconds sum to its
  // coordinated-omission-anchored end-to-end latency, exactly.
  LoadOptions opts = SmallOptions();
  opts.rtrace.mode = obs::RtraceMode::kFull;
  const RunResult r = RunEngine(opts);
  const obs::RtraceReport& tr = r.stats.rtrace;
  EXPECT_EQ(tr.ops, r.stats.completed);
  EXPECT_EQ(tr.sum_mismatches, 0u);
  uint64_t stage_total = 0;
  for (const uint64_t v : tr.stage_ns_sum) stage_total += v;
  EXPECT_EQ(stage_total, tr.total_ns_sum);
  // kFull keeps a record for every completed op; re-check per op.
  ASSERT_EQ(tr.kept.size(), tr.ops);
  for (const obs::RtraceOp& op : tr.kept) {
    uint64_t sum = 0;
    for (const uint64_t v : op.stage_ns) sum += v;
    EXPECT_EQ(sum, op.total_ns()) << "op " << op.op_id;
  }
  // The rtrace totals are the same numbers the latency histogram pins.
  EXPECT_EQ(tr.total_hist.count(), r.stats.latency.count());
  EXPECT_EQ(tr.total_hist.max(), r.stats.latency.max());
}

TEST(LoadEngineTest, RtraceReservoirRetainsTheTrueSlowestOp) {
  // With head sampling effectively disabled, only the slowest-K reservoir
  // keeps records — and it must never lose the true maximum.
  LoadOptions opts = SmallOptions();
  opts.offered_load = 2e6;  // overload: a long backlog tail
  opts.admission = false;
  opts.rtrace.mode = obs::RtraceMode::kSampled;
  opts.rtrace.sample_period = 1u << 20;
  opts.rtrace.reservoir_k = 4;
  const RunResult r = RunEngine(opts);
  const obs::RtraceReport& tr = r.stats.rtrace;
  ASSERT_FALSE(tr.kept.empty());
  EXPECT_LE(tr.kept.size(), 4u + 1u);  // reservoir + the op_seq 0 head keep
  uint64_t kept_max = 0;
  for (const obs::RtraceOp& op : tr.kept) {
    kept_max = std::max(kept_max, op.total_ns());
  }
  EXPECT_EQ(kept_max, r.stats.latency.max());
}

TEST(LoadEngineTest, RtraceModesAreProbeFree) {
  // The probe-effect contract: rtrace off / sampled / full land on the
  // same virtual end time, on the legacy and the partitioned scheduler.
  LoadOptions opts = SmallOptions();
  opts.offered_load = 400e3;
  opts.rtrace.mode = obs::RtraceMode::kOff;
  const RunResult ref = RunEngine(opts, 0);
  for (const obs::RtraceMode mode :
       {obs::RtraceMode::kOff, obs::RtraceMode::kSampled,
        obs::RtraceMode::kFull}) {
    for (const uint32_t threads : {0u, 1u, 2u}) {
      if (mode == obs::RtraceMode::kOff && threads == 0) continue;
      LoadOptions o = opts;
      o.rtrace.mode = mode;
      const RunResult r = RunEngine(o, threads);
      EXPECT_EQ(r.virtual_nanos, ref.virtual_nanos)
          << "mode=" << obs::ToString(mode) << " threads=" << threads;
      EXPECT_EQ(r.stats.completed, ref.stats.completed);
      EXPECT_EQ(r.stats.latency.Quantile(0.999),
                ref.stats.latency.Quantile(0.999));
    }
  }
}

TEST(LoadEngineTest, RcheckCleanWithFullTracing) {
  LoadOptions opts = SmallOptions();
  opts.offered_load = 400e3;
  opts.rtrace.mode = obs::RtraceMode::kFull;
  check::Checker checker;
  const RunResult r = RunEngine(opts, 0, &checker);
  EXPECT_GT(r.stats.rtrace.ops, 0u);
  EXPECT_TRUE(checker.violations().empty())
      << checker.violations().size() << " violations";
}

// -------------------------------------------------------------- hotkeys --
TEST(SpaceSavingTest, TracksHeavyHitterWithErrorBound) {
  SpaceSaving sketch(4);
  // 100 hits on key 7 interleaved with 60 distinct singletons that churn
  // the other counters.
  for (uint64_t i = 0; i < 60; ++i) {
    sketch.Offer(7);
    if (i % 3 == 0) sketch.Offer(7);
    sketch.Offer(1000 + i);
  }
  const std::vector<HotKey> top = sketch.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key_id, 7u);
  // Space-saving bounds: count overestimates by at most `error`.
  EXPECT_GE(top[0].count, 80u);
  EXPECT_LE(top[0].count - top[0].error, 80u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].count, top[i - 1].count);  // sorted by count
  }
}

TEST(LoadEngineTest, HotKeysSurfaceTheZipfHead) {
  const RunResult r = RunEngine(SmallOptions());
  ASSERT_FALSE(r.stats.hotkeys.empty());
  const HotKey& top = r.stats.hotkeys[0];
  // The zipf head is far above the uniform share even after subtracting
  // the sketch's worst-case overestimate.
  EXPECT_GT(top.count - top.error, r.stats.arrivals / 1024);
  for (size_t i = 1; i < r.stats.hotkeys.size(); ++i) {
    EXPECT_LE(r.stats.hotkeys[i].count, r.stats.hotkeys[i - 1].count);
  }
}

TEST(LoadEngineTest, InsertScanAndRmwMixesComplete) {
  for (const char mix : {'d', 'e', 'f'}) {
    LoadOptions opts = SmallOptions();
    opts.mix = WorkloadMix::Ycsb(mix);
    const RunResult r = RunEngine(opts);
    EXPECT_GT(r.stats.completed, 0u) << "mix=" << mix;
    EXPECT_EQ(r.stats.errors, 0u) << "mix=" << mix;
    const auto& by_type = r.stats.completed_by_type;
    if (mix == 'd') {
      EXPECT_GT(by_type[static_cast<uint32_t>(OpType::kInsert)], 0u);
    } else if (mix == 'e') {
      EXPECT_GT(by_type[static_cast<uint32_t>(OpType::kScan)], 0u);
      EXPECT_GT(by_type[static_cast<uint32_t>(OpType::kInsert)], 0u);
    } else {
      EXPECT_GT(by_type[static_cast<uint32_t>(OpType::kReadModifyWrite)],
                0u);
    }
  }
}

}  // namespace
}  // namespace rstore::load
