// Tests for the observability layer: registry semantics and merge, JSON
// dumps, span recording and Chrome trace export, full-cluster layer
// coverage, and the zero-probe-effect guarantee (telemetry attached or
// not, virtual times are bit-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "core/cluster.h"
#include "kv/kv.h"
#include "obs/metrics.h"
#include "obs/rtrace.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

// ------------------------------------------------------------- registry --
TEST(MetricsRegistryTest, MergeAggregatesAcrossNodes) {
  obs::MetricsRegistry reg;
  obs::NodeMetrics& a = reg.ForNode(1, "a");
  obs::NodeMetrics& b = reg.ForNode(2, "b");
  a.GetCounter("ops").Inc(3);
  b.GetCounter("ops").Inc(4);
  b.GetCounter("only_b").Inc();
  a.GetGauge("depth").Set(7);
  a.GetGauge("depth").Set(2);  // level drops, high-water stays
  b.GetGauge("depth").Set(5);
  a.GetTimer("lat_ns").Record(100);
  b.GetTimer("lat_ns").Record(300);

  obs::NodeMetrics merged = reg.Merged();
  EXPECT_EQ(merged.GetCounter("ops").value(), 7u);
  EXPECT_EQ(merged.GetCounter("only_b").value(), 1u);
  EXPECT_EQ(merged.GetGauge("depth").value(), 7);       // 2 + 5
  EXPECT_EQ(merged.GetGauge("depth").high_water(), 7);  // max(7, 5)
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().count(), 2u);
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().min(), 100u);
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().max(), 300u);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter* first = &reg.ForNode(0).GetCounter("x");
  for (uint32_t n = 1; n < 50; ++n) {
    (void)reg.ForNode(n).GetCounter("x");
    (void)reg.ForNode(0).GetCounter("y" + std::to_string(n));
  }
  EXPECT_EQ(first, &reg.ForNode(0).GetCounter("x"));
}

TEST(MetricsRegistryTest, DumpJsonIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.ForNode(0, "master").GetCounter("rpc.calls").Inc(12);
  reg.ForNode(1, "with \"quotes\"\n").GetGauge("depth").Set(-3);
  reg.ForNode(1).GetTimer("lat_ns").Record(5000);

  auto parsed = obs::ParseJson(reg.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* nodes = parsed->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_TRUE(nodes->Is(obs::JsonValue::Type::kArray));
  ASSERT_EQ(nodes->array.size(), 2u);
  const obs::JsonValue* cluster = parsed->Find("cluster");
  ASSERT_NE(cluster, nullptr);
  const obs::JsonValue* counters = cluster->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* calls = counters->Find("rpc.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->number, 12.0);
}

// ---------------------------------------------------------------- spans --
TEST(TracerTest, SpansNestAndExport) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  uint64_t now = 0;
  tel.SetClock([&now] { return now; });

  {
    obs::ObsSpan outer(&tel, 3, "app", "outer");
    now = 100;
    {
      obs::ObsSpan inner(&tel, 3, "client", "inner");
      inner.Arg("bytes", 4096.0);
      now = 250;
    }
    now = 400;
  }
  // Inner recorded first (RAII order), properly nested inside outer.
  const auto& events = tel.tracer().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 150u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 400u);
  EXPECT_GE(events[1].ts_ns, 0u);
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);

  const std::string path = ::testing::TempDir() + "/span_nest_trace.json";
  ASSERT_TRUE(tel.WriteTrace(path).ok());
  auto summary = obs::ValidateChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->complete_spans, 2u);
  EXPECT_TRUE(summary->HasCategory("app"));
  EXPECT_TRUE(summary->HasCategory("client"));
}

TEST(TracerTest, DisabledTracingRecordsNothing) {
  obs::Telemetry tel;  // tracing off
  {
    obs::ObsSpan span(&tel, 0, "app", "never");
    span.Arg("x", 1.0);
  }
  obs::ObsSpan null_span(nullptr, 0, "app", "also never");
  EXPECT_FALSE(null_span.active());
  EXPECT_TRUE(tel.tracer().events().empty());
}

TEST(TracerTest, CapacityCapCountsDrops) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  tel.tracer().SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    tel.tracer().RecordSpan(0, 0, "app", "s", 0, 1);
  }
  EXPECT_EQ(tel.tracer().events().size(), 4u);
  EXPECT_EQ(tel.tracer().dropped(), 6u);
}

// ------------------------------------------------------- cluster traces --
// One small workload that touches every instrumented layer: cached reads
// (cache), rread/rwrite (client), one-sided verbs (verbs), master RPCs
// (rpc), the modelled wire (fabric), and the KV app (app).
TEST(ClusterTraceTest, EveryLayerEmitsSpans) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.telemetry = &tel;
  TestCluster cluster(cfg);
  cluster.RunClient([](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto buf = client.AllocBuffer(8192);
    ASSERT_TRUE(buf.ok());
    {
      auto plain = client.Rmap("r");
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE((*plain)->Write(0, buf->data).ok());
    }
    core::RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("r", opts);
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());  // fill
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());  // hit

    auto kv = kv::KvStore::Create(client, "t");
    ASSERT_TRUE(kv.ok());
    std::vector<std::byte> value(64);
    ASSERT_TRUE((*kv)->Put("k", value).ok());
    ASSERT_TRUE((*kv)->Get("k").ok());
    // Outlive one 50ms heartbeat period so the server-side control path
    // (server.heartbeats) shows up in the snapshot too.
    sim::Sleep(sim::Millis(60));
  });

  const std::string path = ::testing::TempDir() + "/cluster_trace.json";
  ASSERT_TRUE(tel.WriteTrace(path).ok());
  auto summary = obs::ValidateChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status();
  for (const char* category :
       {"fabric", "verbs", "rpc", "client", "cache", "app"}) {
    EXPECT_TRUE(summary->HasCategory(category)) << category;
  }
  // One "process" per simulated node: master + 2 servers + 1 client.
  EXPECT_EQ(summary->processes, 4u);

  // The registry saw the same run: spot-check one counter per layer.
  obs::NodeMetrics merged = tel.metrics().Merged();
  EXPECT_GT(merged.GetCounter("fabric.msgs_out").value(), 0u);
  EXPECT_GT(merged.GetCounter("verbs.doorbells").value(), 0u);
  EXPECT_GT(merged.GetCounter("rpc.rmap.calls").value(), 0u);
  EXPECT_GT(merged.GetCounter("client.data_ops").value(), 0u);
  EXPECT_GT(merged.GetCounter("cache.immutable.hits").value(), 0u);
  EXPECT_GT(merged.GetCounter("kv.gets").value(), 0u);
  EXPECT_GT(merged.GetCounter("server.heartbeats").value(), 0u);
}

// -------------------------------------------------------- probe effect --
// Runs the E4-style distributed PageRank and returns the final virtual
// time. The run must be bit-identical whether telemetry is detached,
// attached, or attached with tracing on.
uint64_t RunPageRank(obs::Telemetry* telemetry) {
  carafe::Graph g = carafe::UniformRandomGraph(1 << 8, 4.0, 4);
  constexpr uint32_t kWorkers = 2;
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.client_nodes = kWorkers;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.telemetry = telemetry;
  TestCluster cluster(cfg);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(carafe::UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      carafe::Worker worker(client, "g",
                            carafe::WorkerConfig{w, kWorkers, "pr"});
      ASSERT_TRUE(worker.Init().ok());
      ASSERT_TRUE(worker.PageRank({.iterations = 5}).ok());
    });
  }
  cluster.sim().Run();
  return static_cast<uint64_t>(cluster.sim().NowNanos());
}

TEST(ProbeEffectTest, PageRankVirtualTimeIdenticalWithTelemetry) {
  const uint64_t detached = RunPageRank(nullptr);
  ASSERT_GT(detached, 0u);

  obs::Telemetry metrics_only;
  EXPECT_EQ(RunPageRank(&metrics_only), detached);
  EXPECT_GT(metrics_only.metrics().node_count(), 0u);

  obs::Telemetry tracing;
  tracing.EnableTracing(true);
  EXPECT_EQ(RunPageRank(&tracing), detached);
  EXPECT_FALSE(tracing.tracer().events().empty());
  EXPECT_GT(tracing.metrics()
                .Merged()
                .GetCounter("carafe.supersteps")
                .value(),
            0u);
}

// --------------------------------------------------------------- rtrace --
obs::RtraceOp MakeOp(uint64_t seq, uint64_t total) {
  obs::RtraceOp op;
  op.op_id = seq;
  op.kind = 1;
  op.server_node = 2;
  op.intended_ns = 1000 * (seq + 1);
  op.done_ns = op.intended_ns + total;
  // Spread the total over four stages with the residue in kCqPoll, so the
  // stage sum reproduces the total exactly — the invariant under test.
  const uint64_t part = total / 4;
  op.stage_ns[static_cast<uint32_t>(obs::RtraceStage::kBacklog)] = part;
  op.stage_ns[static_cast<uint32_t>(obs::RtraceStage::kWire)] = part;
  op.stage_ns[static_cast<uint32_t>(obs::RtraceStage::kServer)] = part;
  op.stage_ns[static_cast<uint32_t>(obs::RtraceStage::kCqPoll)] =
      total - 3 * part;
  op.posted_ns = op.intended_ns + 1;
  op.first_bit_ns = op.intended_ns + 2;
  op.executed_ns = op.done_ns - 1;
  return op;
}

TEST(RtraceTest, ModeParses) {
  obs::RtraceMode mode;
  EXPECT_TRUE(obs::ParseRtraceMode("off", &mode));
  EXPECT_EQ(mode, obs::RtraceMode::kOff);
  EXPECT_TRUE(obs::ParseRtraceMode("sampled", &mode));
  EXPECT_EQ(mode, obs::RtraceMode::kSampled);
  EXPECT_TRUE(obs::ParseRtraceMode("full", &mode));
  EXPECT_EQ(mode, obs::RtraceMode::kFull);
  EXPECT_FALSE(obs::ParseRtraceMode("verbose", &mode));
  EXPECT_EQ(obs::ToString(obs::RtraceMode::kSampled), "sampled");
}

TEST(RtraceTest, FullCollectorKeepsEveryOpAndSumsExactly) {
  obs::RtraceConfig cfg;
  cfg.mode = obs::RtraceMode::kFull;
  obs::RtraceCollector collector(cfg);
  uint64_t want_total = 0;
  for (uint64_t i = 0; i < 50; ++i) {
    collector.Record(i, MakeOp(i, 100 + 10 * i));
    want_total += 100 + 10 * i;
  }
  const obs::RtraceReport r = collector.Finalize();
  EXPECT_EQ(r.ops, 50u);
  EXPECT_EQ(r.sum_mismatches, 0u);
  EXPECT_EQ(r.total_ns_sum, want_total);
  uint64_t stage_total = 0;
  for (const uint64_t v : r.stage_ns_sum) stage_total += v;
  EXPECT_EQ(stage_total, want_total);
  EXPECT_EQ(r.kept.size(), 50u);
  EXPECT_EQ(r.total_hist.count(), 50u);
  EXPECT_EQ(r.total_hist.max(), 100u + 10 * 49);
}

TEST(RtraceTest, SampledKeepsHeadSamplesPlusSlowestK) {
  obs::RtraceConfig cfg;
  cfg.mode = obs::RtraceMode::kSampled;
  cfg.sample_period = 16;
  cfg.reservoir_k = 2;
  obs::RtraceCollector collector(cfg);
  // Mostly-flat totals with two spikes at seq 7 and 33 — neither lands on
  // a head-sample slot, so only the reservoir can retain them.
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t total = i == 7 ? 100000 : i == 33 ? 50000 : 100 + i;
    collector.Record(i, MakeOp(i, total));
  }
  const obs::RtraceReport r = collector.Finalize();
  EXPECT_EQ(r.ops, 64u);  // aggregates always cover every op
  std::set<uint64_t> kept_ids;
  for (const obs::RtraceOp& op : r.kept) kept_ids.insert(op.op_id);
  for (const uint64_t head : {0u, 16u, 32u, 48u}) {
    EXPECT_TRUE(kept_ids.contains(head)) << "head sample " << head;
  }
  EXPECT_TRUE(kept_ids.contains(7));   // true max
  EXPECT_TRUE(kept_ids.contains(33));  // runner-up
  uint64_t kept_max = 0;
  for (const obs::RtraceOp& op : r.kept) {
    kept_max = std::max(kept_max, op.total_ns());
  }
  EXPECT_EQ(kept_max, 100000u);
}

TEST(RtraceTest, AttributionSlicesQuantileBands) {
  obs::RtraceConfig cfg;
  cfg.mode = obs::RtraceMode::kFull;
  obs::RtraceCollector collector(cfg);
  for (uint64_t i = 0; i < 200; ++i) {
    collector.Record(i, MakeOp(i, 1000 + 100 * i));
  }
  const obs::RtraceReport r = collector.Finalize();
  // The whole range reproduces the aggregates exactly.
  const obs::RtraceReport::Slice all = r.Attribution(0.0, 1.0);
  EXPECT_EQ(all.count, r.ops);
  EXPECT_EQ(all.total_ns, r.total_ns_sum);
  for (uint32_t s = 0; s < obs::kRtraceStageCount; ++s) {
    EXPECT_EQ(all.stage_ns[s], r.stage_ns_sum[s]) << "stage " << s;
  }
  // A tail band is a strict subset whose stages still sum to its total.
  const obs::RtraceReport::Slice tail = r.Attribution(0.9, 1.0);
  EXPECT_GT(tail.count, 0u);
  EXPECT_LT(tail.count, r.ops);
  uint64_t tail_stages = 0;
  for (const uint64_t v : tail.stage_ns) tail_stages += v;
  EXPECT_EQ(tail_stages, tail.total_ns);
}

TEST(RtraceTest, MergeAggregatesAndReselectsSlowest) {
  obs::RtraceConfig cfg;
  cfg.mode = obs::RtraceMode::kSampled;
  cfg.sample_period = 8;
  cfg.reservoir_k = 2;
  obs::RtraceCollector a(cfg);
  obs::RtraceCollector b(cfg);
  for (uint64_t i = 0; i < 32; ++i) {
    a.Record(i, MakeOp(i, 100 + i));
    b.Record(i, MakeOp(1000 + i, i == 5 ? 99999 : 200 + i));
  }
  obs::RtraceReport merged = a.Finalize();
  merged.Merge(b.Finalize());
  EXPECT_EQ(merged.ops, 64u);
  EXPECT_EQ(merged.sum_mismatches, 0u);
  uint64_t stage_total = 0;
  for (const uint64_t v : merged.stage_ns_sum) stage_total += v;
  EXPECT_EQ(stage_total, merged.total_ns_sum);
  uint64_t kept_max = 0;
  for (const obs::RtraceOp& op : merged.kept) {
    kept_max = std::max(kept_max, op.total_ns());
  }
  EXPECT_EQ(kept_max, 99999u);  // b's spike survives the merge
  EXPECT_EQ(merged.total_hist.count(), 64u);
}

TEST(RtraceTest, JsonParsesAndFlowsValidate) {
  obs::RtraceConfig cfg;
  cfg.mode = obs::RtraceMode::kFull;
  obs::RtraceCollector collector(cfg);
  for (uint64_t i = 0; i < 12; ++i) {
    collector.Record(i, MakeOp(i, 500 + 50 * i));
  }
  const obs::RtraceReport r = collector.Finalize();

  std::string json;
  obs::AppendRtraceJson(json, r);
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* stages = parsed->Find("stages");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->array.size(), obs::kRtraceStageCount);
  const obs::JsonValue* attr = parsed->Find("attribution");
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->array.size(), 4u);  // p0-50, p50-99, p99-999, p999-100
  EXPECT_EQ(parsed->Find("sum_mismatches")->number, 0.0);

  obs::Telemetry tel;
  tel.EnableTracing(true);
  obs::EmitRtraceTrace(tel.tracer(), r, /*client_node=*/1);
  const std::string path = ::testing::TempDir() + "/rtrace_flows.json";
  ASSERT_TRUE(tel.WriteTrace(path).ok());
  auto summary = obs::ValidateChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_TRUE(summary->HasCategory("rtrace"));
  EXPECT_EQ(summary->flow_ids, 12u);        // one flow per kept op
  EXPECT_EQ(summary->flow_events, 3 * 12u);  // s + t + f each
}

TEST(TraceCheckTest, DanglingAndUnterminatedFlowsAreErrors) {
  const char* kDangling =
      R"({"traceEvents":[{"ph":"f","name":"x","cat":"c","pid":1,"tid":0,)"
      R"("ts":5,"id":7,"bp":"e"}]})";
  auto parsed = obs::ParseJson(kDangling);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto summary = obs::ValidateChromeTrace(*parsed);
  EXPECT_FALSE(summary.ok());

  const char* kUnterminated =
      R"({"traceEvents":[{"ph":"s","name":"x","cat":"c","pid":1,"tid":0,)"
      R"("ts":5,"id":7}]})";
  parsed = obs::ParseJson(kUnterminated);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  summary = obs::ValidateChromeTrace(*parsed);
  EXPECT_FALSE(summary.ok());

  const char* kPaired =
      R"({"traceEvents":[{"ph":"s","name":"x","cat":"c","pid":1,"tid":0,)"
      R"("ts":5,"id":7},{"ph":"f","name":"x","cat":"c","pid":1,"tid":0,)"
      R"("ts":9,"id":7,"bp":"e"}]})";
  parsed = obs::ParseJson(kPaired);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  summary = obs::ValidateChromeTrace(*parsed);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->flow_ids, 1u);
  EXPECT_EQ(summary->flow_events, 2u);
}

}  // namespace
}  // namespace rstore
