// Tests for the observability layer: registry semantics and merge, JSON
// dumps, span recording and Chrome trace export, full-cluster layer
// coverage, and the zero-probe-effect guarantee (telemetry attached or
// not, virtual times are bit-identical).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "core/cluster.h"
#include "kv/kv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_check.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

// ------------------------------------------------------------- registry --
TEST(MetricsRegistryTest, MergeAggregatesAcrossNodes) {
  obs::MetricsRegistry reg;
  obs::NodeMetrics& a = reg.ForNode(1, "a");
  obs::NodeMetrics& b = reg.ForNode(2, "b");
  a.GetCounter("ops").Inc(3);
  b.GetCounter("ops").Inc(4);
  b.GetCounter("only_b").Inc();
  a.GetGauge("depth").Set(7);
  a.GetGauge("depth").Set(2);  // level drops, high-water stays
  b.GetGauge("depth").Set(5);
  a.GetTimer("lat_ns").Record(100);
  b.GetTimer("lat_ns").Record(300);

  obs::NodeMetrics merged = reg.Merged();
  EXPECT_EQ(merged.GetCounter("ops").value(), 7u);
  EXPECT_EQ(merged.GetCounter("only_b").value(), 1u);
  EXPECT_EQ(merged.GetGauge("depth").value(), 7);       // 2 + 5
  EXPECT_EQ(merged.GetGauge("depth").high_water(), 7);  // max(7, 5)
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().count(), 2u);
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().min(), 100u);
  EXPECT_EQ(merged.GetTimer("lat_ns").hist().max(), 300u);
}

TEST(MetricsRegistryTest, InstrumentPointersAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter* first = &reg.ForNode(0).GetCounter("x");
  for (uint32_t n = 1; n < 50; ++n) {
    (void)reg.ForNode(n).GetCounter("x");
    (void)reg.ForNode(0).GetCounter("y" + std::to_string(n));
  }
  EXPECT_EQ(first, &reg.ForNode(0).GetCounter("x"));
}

TEST(MetricsRegistryTest, DumpJsonIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.ForNode(0, "master").GetCounter("rpc.calls").Inc(12);
  reg.ForNode(1, "with \"quotes\"\n").GetGauge("depth").Set(-3);
  reg.ForNode(1).GetTimer("lat_ns").Record(5000);

  auto parsed = obs::ParseJson(reg.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const obs::JsonValue* nodes = parsed->Find("nodes");
  ASSERT_NE(nodes, nullptr);
  ASSERT_TRUE(nodes->Is(obs::JsonValue::Type::kArray));
  ASSERT_EQ(nodes->array.size(), 2u);
  const obs::JsonValue* cluster = parsed->Find("cluster");
  ASSERT_NE(cluster, nullptr);
  const obs::JsonValue* counters = cluster->Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* calls = counters->Find("rpc.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(calls->number, 12.0);
}

// ---------------------------------------------------------------- spans --
TEST(TracerTest, SpansNestAndExport) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  uint64_t now = 0;
  tel.SetClock([&now] { return now; });

  {
    obs::ObsSpan outer(&tel, 3, "app", "outer");
    now = 100;
    {
      obs::ObsSpan inner(&tel, 3, "client", "inner");
      inner.Arg("bytes", 4096.0);
      now = 250;
    }
    now = 400;
  }
  // Inner recorded first (RAII order), properly nested inside outer.
  const auto& events = tel.tracer().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 150u);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].ts_ns, 0u);
  EXPECT_EQ(events[1].dur_ns, 400u);
  EXPECT_GE(events[1].ts_ns, 0u);
  EXPECT_LE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_GE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);

  const std::string path = ::testing::TempDir() + "/span_nest_trace.json";
  ASSERT_TRUE(tel.WriteTrace(path).ok());
  auto summary = obs::ValidateChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status();
  EXPECT_EQ(summary->complete_spans, 2u);
  EXPECT_TRUE(summary->HasCategory("app"));
  EXPECT_TRUE(summary->HasCategory("client"));
}

TEST(TracerTest, DisabledTracingRecordsNothing) {
  obs::Telemetry tel;  // tracing off
  {
    obs::ObsSpan span(&tel, 0, "app", "never");
    span.Arg("x", 1.0);
  }
  obs::ObsSpan null_span(nullptr, 0, "app", "also never");
  EXPECT_FALSE(null_span.active());
  EXPECT_TRUE(tel.tracer().events().empty());
}

TEST(TracerTest, CapacityCapCountsDrops) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  tel.tracer().SetCapacity(4);
  for (int i = 0; i < 10; ++i) {
    tel.tracer().RecordSpan(0, 0, "app", "s", 0, 1);
  }
  EXPECT_EQ(tel.tracer().events().size(), 4u);
  EXPECT_EQ(tel.tracer().dropped(), 6u);
}

// ------------------------------------------------------- cluster traces --
// One small workload that touches every instrumented layer: cached reads
// (cache), rread/rwrite (client), one-sided verbs (verbs), master RPCs
// (rpc), the modelled wire (fabric), and the KV app (app).
TEST(ClusterTraceTest, EveryLayerEmitsSpans) {
  obs::Telemetry tel;
  tel.EnableTracing(true);
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.telemetry = &tel;
  TestCluster cluster(cfg);
  cluster.RunClient([](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20).ok());
    auto buf = client.AllocBuffer(8192);
    ASSERT_TRUE(buf.ok());
    {
      auto plain = client.Rmap("r");
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE((*plain)->Write(0, buf->data).ok());
    }
    core::RmapOptions opts;
    opts.cache_mode = cache::CacheMode::kImmutable;
    auto region = client.Rmap("r", opts);
    ASSERT_TRUE(region.ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());  // fill
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());  // hit

    auto kv = kv::KvStore::Create(client, "t");
    ASSERT_TRUE(kv.ok());
    std::vector<std::byte> value(64);
    ASSERT_TRUE((*kv)->Put("k", value).ok());
    ASSERT_TRUE((*kv)->Get("k").ok());
    // Outlive one 50ms heartbeat period so the server-side control path
    // (server.heartbeats) shows up in the snapshot too.
    sim::Sleep(sim::Millis(60));
  });

  const std::string path = ::testing::TempDir() + "/cluster_trace.json";
  ASSERT_TRUE(tel.WriteTrace(path).ok());
  auto summary = obs::ValidateChromeTraceFile(path);
  ASSERT_TRUE(summary.ok()) << summary.status();
  for (const char* category :
       {"fabric", "verbs", "rpc", "client", "cache", "app"}) {
    EXPECT_TRUE(summary->HasCategory(category)) << category;
  }
  // One "process" per simulated node: master + 2 servers + 1 client.
  EXPECT_EQ(summary->processes, 4u);

  // The registry saw the same run: spot-check one counter per layer.
  obs::NodeMetrics merged = tel.metrics().Merged();
  EXPECT_GT(merged.GetCounter("fabric.msgs_out").value(), 0u);
  EXPECT_GT(merged.GetCounter("verbs.doorbells").value(), 0u);
  EXPECT_GT(merged.GetCounter("rpc.rmap.calls").value(), 0u);
  EXPECT_GT(merged.GetCounter("client.data_ops").value(), 0u);
  EXPECT_GT(merged.GetCounter("cache.immutable.hits").value(), 0u);
  EXPECT_GT(merged.GetCounter("kv.gets").value(), 0u);
  EXPECT_GT(merged.GetCounter("server.heartbeats").value(), 0u);
}

// -------------------------------------------------------- probe effect --
// Runs the E4-style distributed PageRank and returns the final virtual
// time. The run must be bit-identical whether telemetry is detached,
// attached, or attached with tracing on.
uint64_t RunPageRank(obs::Telemetry* telemetry) {
  carafe::Graph g = carafe::UniformRandomGraph(1 << 8, 4.0, 4);
  constexpr uint32_t kWorkers = 2;
  ClusterConfig cfg;
  cfg.memory_servers = 2;
  cfg.client_nodes = kWorkers;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.telemetry = telemetry;
  TestCluster cluster(cfg);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(carafe::UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      carafe::Worker worker(client, "g",
                            carafe::WorkerConfig{w, kWorkers, "pr"});
      ASSERT_TRUE(worker.Init().ok());
      ASSERT_TRUE(worker.PageRank({.iterations = 5}).ok());
    });
  }
  cluster.sim().Run();
  return static_cast<uint64_t>(cluster.sim().NowNanos());
}

TEST(ProbeEffectTest, PageRankVirtualTimeIdenticalWithTelemetry) {
  const uint64_t detached = RunPageRank(nullptr);
  ASSERT_GT(detached, 0u);

  obs::Telemetry metrics_only;
  EXPECT_EQ(RunPageRank(&metrics_only), detached);
  EXPECT_GT(metrics_only.metrics().node_count(), 0u);

  obs::Telemetry tracing;
  tracing.EnableTracing(true);
  EXPECT_EQ(RunPageRank(&tracing), detached);
  EXPECT_FALSE(tracing.tracer().events().empty());
  EXPECT_GT(tracing.metrics()
                .Merged()
                .GetCounter("carafe.supersteps")
                .value(),
            0u);
}

}  // namespace
}  // namespace rstore
