// Determinism matrix for the partitioned scheduler.
//
// The tentpole claim of the parallel simulator: the timeline — virtual
// end time, event count, every application-visible result — is a pure
// function of the workload and the seed, never of how many host worker
// threads dispatch it. These tests pin that claim across
// host_threads in {1, 2, 4, 8} for the workload shapes the experiments
// lean on (E4 PageRank over the BSP engine, E9 KV point ops, the rcheck
// planted-race explore workload), plus the epoch-boundary edge cases:
// an event posted exactly one conservative lookahead ahead fires at its
// exact timestamp, and verbs completions land on the initiator's
// partition with a thread-count-independent timeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "carafe/engine.h"
#include "carafe/graph.h"
#include "carafe/storage.h"
#include "check/check.h"
#include "core/cluster.h"
#include "explore/policy.h"
#include "explore/workloads.h"
#include "kv/kv.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

constexpr uint32_t kThreadMatrix[] = {1, 2, 4, 8};

// Everything one run exposes: the exact virtual clock at quiescence, the
// number of events dispatched, and a workload-defined digest of the
// application-visible results. Identical signatures = identical runs.
struct RunSignature {
  uint64_t vnanos = 0;
  uint64_t events = 0;
  std::string digest;

  bool operator==(const RunSignature&) const = default;
};

// Scoped RSTORE_HOST_THREADS override for workloads that construct their
// own Simulation (the explore workloads). Restores the prior value so the
// test stays hermetic under the CI parallel-determinism gate.
class HostThreadsGuard {
 public:
  explicit HostThreadsGuard(uint32_t n) {
    if (const char* prev = std::getenv("RSTORE_HOST_THREADS");
        prev != nullptr) {
      had_prev_ = true;
      prev_ = prev;
    }
    setenv("RSTORE_HOST_THREADS", std::to_string(n).c_str(),
           /*overwrite=*/1);
  }
  ~HostThreadsGuard() {
    if (had_prev_) {
      setenv("RSTORE_HOST_THREADS", prev_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv("RSTORE_HOST_THREADS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

// ------------------------------------------------------ E4: PageRank ----
// Two BSP workers run distributed PageRank; the digest is the exact bit
// pattern of every rank (floating point must match bitwise, not merely
// within tolerance — the runs are supposed to be the *same* run).
RunSignature RunPageRank(uint32_t host_threads) {
  const carafe::Graph g = carafe::UniformRandomGraph(1 << 8, 6.0, 4);
  constexpr uint32_t kWorkers = 2;

  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = kWorkers;
  cfg.server_capacity = 32ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.host_threads = host_threads;
  TestCluster cluster(cfg);

  std::vector<std::vector<double>> results(kWorkers);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      if (w == 0) {
        ASSERT_TRUE(carafe::UploadGraph(client, "g", g).ok());
        ASSERT_TRUE(client.NotifyInc("uploaded").ok());
      } else {
        ASSERT_TRUE(client.WaitNotify("uploaded", 1).ok());
      }
      carafe::Worker worker(client, "g",
                            carafe::WorkerConfig{w, kWorkers, "pr"});
      ASSERT_TRUE(worker.Init().ok());
      auto ranks = worker.PageRank({.iterations = 5});
      ASSERT_TRUE(ranks.ok()) << ranks.status();
      results[w] = std::move(*ranks);
    });
  }
  cluster.sim().Run();

  RunSignature sig;
  sig.vnanos = cluster.sim().NowNanos();
  sig.events = cluster.sim().events_processed();
  for (const auto& ranks : results) {
    const size_t off = sig.digest.size();
    sig.digest.resize(off + ranks.size() * sizeof(double));
    std::memcpy(sig.digest.data() + off, ranks.data(),
                ranks.size() * sizeof(double));
  }
  return sig;
}

TEST(PartitionMatrixTest, PageRankTimelineIdenticalAcrossHostThreads) {
  const RunSignature ref = RunPageRank(kThreadMatrix[0]);
  EXPECT_FALSE(ref.digest.empty());
  for (size_t i = 1; i < std::size(kThreadMatrix); ++i) {
    const RunSignature got = RunPageRank(kThreadMatrix[i]);
    EXPECT_EQ(got.vnanos, ref.vnanos) << "threads=" << kThreadMatrix[i];
    EXPECT_EQ(got.events, ref.events) << "threads=" << kThreadMatrix[i];
    EXPECT_EQ(got.digest, ref.digest) << "threads=" << kThreadMatrix[i];
  }
  // The legacy scheduler is a different dispatch engine over the same
  // model; its application results (the ranks) must agree bitwise even
  // though its bookkeeping (event count) may differ.
  const RunSignature legacy = RunPageRank(0);
  EXPECT_EQ(legacy.digest, ref.digest);
}

// ------------------------------------------------------------ E9: KV ----
// Writer fills a shared table and releases the reader through the
// master's notify channel; the reader digests every value it observes.
RunSignature RunKv(uint32_t host_threads) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 2;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.host_threads = host_threads;
  TestCluster cluster(cfg);

  constexpr int kKeys = 32;
  std::string observed;
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    auto kv = kv::KvStore::Create(client, "shared");
    ASSERT_TRUE(kv.ok()) << kv.status();
    for (int k = 0; k < kKeys; ++k) {
      ASSERT_TRUE((*kv)
                      ->Put("key" + std::to_string(k),
                            "value-" + std::to_string(k * 17))
                      .ok());
    }
    ASSERT_TRUE(client.NotifyInc("filled").ok());
  });
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("filled", 1).ok());
    auto kv = kv::KvStore::Open(client, "shared");
    ASSERT_TRUE(kv.ok()) << kv.status();
    for (int k = 0; k < kKeys; ++k) {
      auto v = (*kv)->Get("key" + std::to_string(k));
      ASSERT_TRUE(v.ok()) << "key" << k << ": " << v.status();
      observed.append(reinterpret_cast<const char*>(v->data()), v->size());
      observed.push_back(';');
    }
  });
  cluster.sim().Run();

  RunSignature sig;
  sig.vnanos = cluster.sim().NowNanos();
  sig.events = cluster.sim().events_processed();
  sig.digest = std::move(observed);
  return sig;
}

TEST(PartitionMatrixTest, KvTimelineIdenticalAcrossHostThreads) {
  const RunSignature ref = RunKv(kThreadMatrix[0]);
  EXPECT_FALSE(ref.digest.empty());
  for (size_t i = 1; i < std::size(kThreadMatrix); ++i) {
    const RunSignature got = RunKv(kThreadMatrix[i]);
    EXPECT_EQ(got.vnanos, ref.vnanos) << "threads=" << kThreadMatrix[i];
    EXPECT_EQ(got.events, ref.events) << "threads=" << kThreadMatrix[i];
    EXPECT_EQ(got.digest, ref.digest) << "threads=" << kThreadMatrix[i];
  }
  const RunSignature legacy = RunKv(0);
  EXPECT_EQ(legacy.digest, ref.digest);
}

// ------------------------------------- rcheck + rexplore planted race ----
// The race-unfenced explore workload under a seeded random-walk policy
// and the happens-before checker. Attaching either serializes dispatch,
// so this pins the other half of the claim: the *serialized* partitioned
// timeline — including the checker's report and the policy's decision
// sequence — does not depend on the configured worker count.
RunSignature RunPlantedRace(uint32_t host_threads, uint64_t seed) {
  HostThreadsGuard guard(host_threads);
  const auto workloads = explore::BuiltinWorkloads();
  const explore::NamedWorkload* wl =
      explore::FindWorkload(workloads, "race-unfenced");
  EXPECT_NE(wl, nullptr);

  explore::RandomWalkPolicy policy(seed);
  check::Checker checker;
  RunSignature sig;
  explore::RunContext ctx;
  ctx.policy = &policy;
  ctx.checker = &checker;
  ctx.out_final_vtime = &sig.vnanos;
  ctx.out_events = &sig.events;
  wl->workload(ctx);

  std::ostringstream report;
  checker.DumpJson(report);
  sig.digest = report.str();
  return sig;
}

TEST(PartitionMatrixTest, PlantedRaceReportIdenticalAcrossHostThreads) {
  for (uint64_t seed : {7u, 23u}) {
    const RunSignature ref = RunPlantedRace(kThreadMatrix[0], seed);
    for (size_t i = 1; i < std::size(kThreadMatrix); ++i) {
      const RunSignature got = RunPlantedRace(kThreadMatrix[i], seed);
      EXPECT_EQ(got.vnanos, ref.vnanos)
          << "seed=" << seed << " threads=" << kThreadMatrix[i];
      EXPECT_EQ(got.events, ref.events)
          << "seed=" << seed << " threads=" << kThreadMatrix[i];
      EXPECT_EQ(got.digest, ref.digest)
          << "seed=" << seed << " threads=" << kThreadMatrix[i];
    }
  }
}

// ----------------------------------------------- epoch-boundary edges ----
// An event posted exactly one conservative lookahead ahead of the source
// clock sits exactly on the epoch horizon (dispatch is strict t < until):
// it must NOT run in the posting epoch, and must fire in a later epoch at
// exactly its timestamp — never clamped, never early.
TEST(PartitionEdgeTest, EventAtLookaheadHorizonFiresAtExactTime) {
  const sim::Nanos la = sim::ConservativeLookahead(sim::NicConfig{});
  ASSERT_GT(la, 0u);
  for (uint32_t threads : {0u, 1u, 2u, 8u}) {
    sim::Simulation sim(
        sim::SimConfig{.seed = 1, .host_threads = threads});
    verbs::Network net(sim);  // attaches the fabric => finite lookahead
    sim::Node& a = sim.AddNode("a");
    sim::Node& b = sim.AddNode("b");
    net.AddDevice(a);
    net.AddDevice(b);
    uint64_t fired_at = 0;
    a.Spawn("poster", [&] {
      sim::Sleep(sim::Micros(5));
      const sim::Nanos t0 = sim::Now();
      sim.PostToNode(b.id(), t0 + la,
                     [&] { fired_at = sim.NowNanos(); });
    });
    sim.Run();
    EXPECT_EQ(fired_at, sim::Micros(5) + la) << "threads=" << threads;
  }
}

// A verbs RDMA WRITE issued cross-partition: the payload must land in the
// target's memory and the completion must surface on the initiator's CQ,
// with the identical completion timestamp for every worker count.
TEST(PartitionEdgeTest, CrossPartitionWriteCompletionIsDeterministic) {
  auto run = [](uint32_t threads) {
    sim::Simulation sim(
        sim::SimConfig{.seed = 1, .host_threads = threads});
    verbs::Network net(sim);
    sim::Node& cn = sim.AddNode("client");
    sim::Node& sn = sim.AddNode("server");
    verbs::Device& cdev = net.AddDevice(cn);
    verbs::Device& sdev = net.AddDevice(sn);

    std::vector<std::byte> src(4096), dst(4096);
    verbs::ProtectionDomain& spd = sdev.CreatePd();
    auto dst_mr = spd.RegisterMemory(
        dst.data(), dst.size(),
        verbs::kLocalWrite | verbs::kRemoteWrite);
    EXPECT_TRUE(dst_mr.ok());

    uint64_t completion_vtime = 0;
    net.Listen(sdev, 7);
    sn.Spawn("server", [&] {
      auto qp = net.Listen(sdev, 7).Accept();
      ASSERT_TRUE(qp.ok());
    });
    cn.Spawn("client", [&] {
      auto qp = net.Connect(cdev, sn.id(), 7);
      ASSERT_TRUE(qp.ok()) << qp.status();
      verbs::ProtectionDomain& cpd = cdev.CreatePd();
      auto src_mr = cpd.RegisterMemory(src.data(), src.size(),
                                       verbs::kLocalWrite);
      ASSERT_TRUE(src_mr.ok());
      for (size_t i = 0; i < src.size(); ++i) src[i] = std::byte(i & 0xFF);
      ASSERT_TRUE((*qp)
                      ->PostSend(verbs::SendWr{
                          .wr_id = 9,
                          .opcode = verbs::Opcode::kRdmaWrite,
                          .local = {src.data(), 4096, (*src_mr)->lkey()},
                          .remote_addr = (*dst_mr)->remote_addr(),
                          .rkey = (*dst_mr)->rkey()})
                      .ok());
      auto wc = (*qp)->send_cq().WaitOne();
      ASSERT_TRUE(wc.ok());
      EXPECT_TRUE(wc->ok());
      completion_vtime = sim::Now();
    });
    sim.Run();
    EXPECT_TRUE(std::memcmp(src.data(), dst.data(), 4096) == 0)
        << "threads=" << threads;
    return completion_vtime;
  };
  const uint64_t ref = run(1);
  EXPECT_GT(ref, 0u);
  for (uint32_t threads : {2u, 4u, 8u}) {
    EXPECT_EQ(run(threads), ref) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rstore
