// Property-based tests: randomized sweeps that check invariants rather
// than specific values. Parameterized over seeds and cluster shapes so
// each instantiation explores a different deterministic trajectory.
//
//   * Model-based IO: a distributed region must behave exactly like a
//     local byte array under arbitrary interleaved reads/writes.
//   * Allocator accounting: slabs never leak or double-allocate across
//     arbitrary ralloc/rfree sequences.
//   * Fabric conservation: every sent byte is delivered or dropped;
//     latency never undercuts the configured floor.
//   * Verbs ordering: completions on one QP pop in post order under
//     random mixes of reads/writes of random sizes.
//   * Crash safety: killing a random memory server mid-workload leaves
//     clients with clean errors (or success), never hangs or crashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"
#include "verbs/verbs.h"

namespace rstore {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;
using sim::Millis;

// ---------------------------------------------------------------------------
// Model-based IO equivalence
// ---------------------------------------------------------------------------
struct IoModelParam {
  uint64_t seed;
  uint32_t servers;
  uint64_t slab_size;
  uint64_t region_size;
};

class IoModelTest : public ::testing::TestWithParam<IoModelParam> {};

TEST_P(IoModelTest, RegionBehavesLikeLocalByteArray) {
  const IoModelParam p = GetParam();
  ClusterConfig cfg;
  cfg.memory_servers = p.servers;
  cfg.client_nodes = 1;
  cfg.master.slab_size = p.slab_size;
  cfg.server_capacity =
      ((p.region_size / p.servers) / p.slab_size + 2) * p.slab_size;
  cfg.seed = p.seed;
  TestCluster cluster(cfg);

  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", p.region_size).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());

    std::vector<std::byte> model(p.region_size, std::byte{0});
    // The store starts zeroed (server arenas are zero-initialized).
    auto buf = client.AllocBuffer(p.region_size);
    ASSERT_TRUE(buf.ok());

    Rng rng(p.seed * 31 + 7);
    for (int step = 0; step < 120; ++step) {
      const uint64_t off = rng.NextBelow(p.region_size);
      const uint64_t len =
          std::min<uint64_t>(1 + rng.NextBelow(p.region_size / 3),
                             p.region_size - off);
      if (rng.NextBool(0.5)) {
        rng.Fill(buf->begin(), len);
        std::memcpy(model.data() + off, buf->begin(), len);
        ASSERT_TRUE(
            (*region)
                ->Write(off, std::span<const std::byte>(buf->begin(), len))
                .ok());
      } else {
        ASSERT_TRUE(
            (*region)->Read(off, std::span<std::byte>(buf->begin(), len))
                .ok());
        ASSERT_EQ(std::memcmp(buf->begin(), model.data() + off, len), 0)
            << "step " << step << " off " << off << " len " << len;
      }
    }
    // Final full-region audit.
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    ASSERT_EQ(std::memcmp(buf->begin(), model.data(), p.region_size), 0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, IoModelTest,
    ::testing::Values(IoModelParam{1, 1, 4096, 16 << 10},
                      IoModelParam{2, 2, 4096, 64 << 10},
                      IoModelParam{3, 3, 1 << 16, 1 << 20},
                      IoModelParam{4, 4, 1 << 16, 333'333},
                      IoModelParam{5, 5, 1 << 20, 5 << 20},
                      IoModelParam{6, 2, 1 << 14, (1 << 20) + 17}),
    [](const ::testing::TestParamInfo<IoModelParam>& info) {
      const auto& p = info.param;
      return "seed" + std::to_string(p.seed) + "_s" +
             std::to_string(p.servers) + "_slab" +
             std::to_string(p.slab_size) + "_n" +
             std::to_string(p.region_size);
    });

// ---------------------------------------------------------------------------
// Allocator accounting
// ---------------------------------------------------------------------------
class AllocAccountingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocAccountingTest, SlabsNeverLeakOrDoubleAllocate) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 1;
  cfg.master.slab_size = 1 << 20;
  cfg.server_capacity = 16ULL << 20;  // 64 slabs total
  cfg.seed = seed;
  TestCluster cluster(cfg);

  cluster.RunClient([&](RStoreClient& client) {
    Rng rng(seed);
    std::map<std::string, uint64_t> live;  // name -> slabs
    uint64_t next_id = 0;
    const uint64_t total_slabs = 64;
    for (int step = 0; step < 150; ++step) {
      uint64_t live_slabs = 0;
      for (const auto& [n, s] : live) live_slabs += s;

      if (live.empty() || rng.NextBool(0.6)) {
        const uint64_t want = 1 + rng.NextBelow(12);
        const std::string name = "r" + std::to_string(next_id++);
        Status st = client.Ralloc(name, want << 20);
        if (want <= total_slabs - live_slabs) {
          ASSERT_TRUE(st.ok()) << "want=" << want << " live=" << live_slabs
                               << ": " << st;
          live[name] = want;
        } else {
          ASSERT_EQ(st.code(), ErrorCode::kOutOfMemory);
        }
      } else {
        auto it = live.begin();
        std::advance(it, static_cast<long>(rng.NextBelow(live.size())));
        ASSERT_TRUE(client.Rfree(it->first).ok());
        live.erase(it);
      }
      // Master view must agree with the model.
      uint64_t expect_live = 0;
      for (const auto& [n, s] : live) expect_live += s;
      ASSERT_EQ(cluster.master().free_slabs(), total_slabs - expect_live);
    }
    // Free everything: the cluster must be whole again.
    for (const auto& [name, slabs] : live) {
      ASSERT_TRUE(client.Rfree(name).ok());
    }
    ASSERT_EQ(cluster.master().free_slabs(), total_slabs);
    ASSERT_TRUE(client.Ralloc("all", 64ULL << 20).ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocAccountingTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Fabric conservation
// ---------------------------------------------------------------------------
class FabricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FabricPropertyTest, EveryMessageDeliversOnceAndRespectsLatencyFloor) {
  const uint64_t seed = GetParam();
  sim::Simulation sim(sim::SimConfig{.seed = seed});
  constexpr int kNodes = 6;
  for (int i = 0; i < kNodes; ++i) sim.AddNode("n");
  sim::Fabric fabric(sim, sim::NicConfig{});

  Rng rng(seed);
  // Atomic: deliveries on different destination nodes can run on
  // concurrent host threads under the partitioned scheduler.
  std::atomic<int> delivered{0};
  std::atomic<int> dropped{0};
  int sent = 0;
  uint64_t bytes_sent = 0;
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<uint32_t>(rng.NextBelow(kNodes));
    auto dst = static_cast<uint32_t>(rng.NextBelow(kNodes));
    if (dst == src) dst = (dst + 1) % kNodes;
    const uint64_t size = rng.NextBelow(1 << 20);
    const sim::Nanos sent_at =
        static_cast<sim::Nanos>(rng.NextBelow(sim::Millis(5)));
    ++sent;
    bytes_sent += size;
    sim.At(sent_at, [&, src, dst, size, sent_at] {
      fabric.Send(src, dst, size,
                  [&, sent_at, size] {
                    ++delivered;
                    const sim::Nanos latency = sim.NowNanos() - sent_at;
                    EXPECT_GE(latency,
                              fabric.config().base_latency +
                                  sim::TransferTime(
                                      size, fabric.config().bandwidth_bps));
                  },
                  [&] { ++dropped; });
    });
  }
  sim.Run();
  EXPECT_EQ(delivered + dropped, sent);
  EXPECT_EQ(dropped, 0);  // no partitions in this sweep
  EXPECT_EQ(fabric.total_bytes(), bytes_sent);
  uint64_t in = 0, out = 0;
  for (uint32_t n = 0; n < kNodes; ++n) {
    in += fabric.bytes_in(n);
    out += fabric.bytes_out(n);
  }
  EXPECT_EQ(in, bytes_sent);
  EXPECT_EQ(out, bytes_sent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricPropertyTest,
                         ::testing::Values(3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Verbs ordering under random mixes
// ---------------------------------------------------------------------------
class VerbsOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VerbsOrderTest, CompletionsPopInPostOrder) {
  const uint64_t seed = GetParam();
  sim::Simulation sim;
  verbs::Network net(sim);
  auto& server = sim.AddNode("server");
  auto& client = sim.AddNode("client");
  auto& sdev = net.AddDevice(server);
  auto& cdev = net.AddDevice(client);

  std::vector<std::byte> remote(1 << 20), local(1 << 20);
  auto* rmr = *sdev.CreatePd().RegisterMemory(
      remote.data(), remote.size(),
      verbs::kLocalWrite | verbs::kRemoteRead | verbs::kRemoteWrite);
  auto* lmr = *cdev.CreatePd().RegisterMemory(local.data(), local.size(),
                                              verbs::kLocalWrite);
  net.Listen(sdev, 1);
  server.Spawn("srv", [&] { (void)net.Listen(sdev, 1).Accept(); });
  client.Spawn("cli", [&, seed] {
    auto qp = net.Connect(cdev, server.id(), 1);
    ASSERT_TRUE(qp.ok());
    Rng rng(seed);
    constexpr int kOps = 64;
    for (int i = 0; i < kOps; ++i) {
      const bool read = rng.NextBool(0.5);
      const auto size = static_cast<uint32_t>(1 + rng.NextBelow(1 << 18));
      ASSERT_TRUE(
          (*qp)->PostSend(verbs::SendWr{
                    .wr_id = static_cast<uint64_t>(i),
                    .opcode = read ? verbs::Opcode::kRdmaRead
                                   : verbs::Opcode::kRdmaWrite,
                    .local = {local.data(), size, lmr->lkey()},
                    .remote_addr = rmr->remote_addr(),
                    .rkey = rmr->rkey()})
              .ok());
    }
    uint64_t expect = 0;
    while (expect < kOps) {
      for (const auto& wc : (*qp)->send_cq().WaitPoll()) {
        ASSERT_TRUE(wc.ok());
        ASSERT_EQ(wc.wr_id, expect);
        ++expect;
      }
    }
  });
  sim.Run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerbsOrderTest,
                         ::testing::Values(2, 4, 6, 9));

// ---------------------------------------------------------------------------
// Crash safety sweep
// ---------------------------------------------------------------------------
class CrashSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashSweepTest, ServerDeathMidWorkloadNeverHangsOrCorrupts) {
  const uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 1;
  cfg.master.slab_size = 1 << 20;
  cfg.server_capacity = 16ULL << 20;
  cfg.seed = seed;
  TestCluster cluster(cfg);

  // Kill a random server at a random instant while the client hammers a
  // striped region. The client must observe only OK or clean errors.
  Rng planner(seed * 101);
  const auto victim = static_cast<uint32_t>(planner.NextBelow(4));
  const sim::Nanos when = Millis(1) + planner.NextBelow(Millis(10));
  const uint32_t victim_node = cluster.server_node(victim).id();
  cluster.sim().After(when,
                      [&, victim_node] { cluster.sim().KillNode(victim_node); });

  int ok_ops = 0, failed_ops = 0;
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 8ULL << 20).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(1 << 20);
    ASSERT_TRUE(buf.ok());
    Rng rng(seed);
    for (int i = 0; i < 60; ++i) {
      const uint64_t off = rng.NextBelow((8ULL << 20) - (1 << 20));
      Status st = rng.NextBool(0.5)
                      ? (*region)->Write(off, buf->data)
                      : (*region)->Read(off, buf->data);
      if (st.ok()) {
        ++ok_ops;
      } else {
        ++failed_ops;
        EXPECT_TRUE(st.code() == ErrorCode::kUnavailable ||
                    st.code() == ErrorCode::kTimedOut ||
                    st.code() == ErrorCode::kPermissionDenied)
            << st;
      }
      sim::Sleep(sim::Micros(200));
    }
  });
  // The run terminated (no hang) and every op resolved.
  EXPECT_EQ(ok_ops + failed_ops, 60);
  EXPECT_GT(ok_ops, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSweepTest,
                         ::testing::Values(7, 17, 27, 37, 47));

// ---------------------------------------------------------------------------
// Whole-cluster determinism
// ---------------------------------------------------------------------------
TEST(DeterminismProperty, MixedWorkloadTimelineIsReproducible) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.memory_servers = 3;
    cfg.client_nodes = 2;
    cfg.master.slab_size = 1 << 20;
    cfg.server_capacity = 8ULL << 20;
    cfg.seed = 12345;
    TestCluster cluster(cfg);
    // One slot per client: the clients live on different nodes, so under
    // the partitioned scheduler they may finish on concurrent host
    // threads — indexing by client id keeps the collection race-free and
    // the comparison order-independent (the timestamps themselves are the
    // determinism claim).
    std::vector<sim::Nanos> marks(2, 0);
    for (uint32_t c = 0; c < 2; ++c) {
      cluster.SpawnClient(c, [&, c](RStoreClient& client) {
        const std::string mine = "r" + std::to_string(c);
        (void)client.Ralloc(mine, 2ULL << 20);
        auto region = client.Rmap(mine);
        if (!region.ok()) return;
        auto buf = client.AllocBuffer(256 << 10);
        if (!buf.ok()) return;
        for (int i = 0; i < 10; ++i) {
          (void)(*region)->Write((i % 8) * (256 << 10), buf->data);
          (void)client.NotifyInc("tick");
        }
        (void)client.WaitNotify("tick", 20);
        marks[c] = sim::Now();
      });
    }
    cluster.sim().Run();
    return marks;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rstore
