// Tests for region replication (the fault-tolerance extension): placement
// invariants, write fan-out, primary failover at map time, accounting,
// and the atomics restriction.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/rng.h"
#include "core/cluster.h"

namespace rstore::core {
namespace {

using sim::Millis;

ClusterConfig ReplCluster() {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = 2;
  cfg.server_capacity = 16ULL << 20;
  cfg.master.slab_size = 1ULL << 20;
  cfg.master.lease_timeout = Millis(120);
  cfg.master.sweep_interval = Millis(30);
  return cfg;
}

void FillPattern(std::span<std::byte> buf, uint64_t seed) {
  Rng rng(seed);
  rng.Fill(buf.data(), buf.size());
}

TEST(ReplicationTest, CopiesLandOnDistinctServers) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20, /*copies=*/3).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    const RegionDesc& desc = (*region)->desc();
    EXPECT_EQ(desc.copies, 3u);
    ASSERT_EQ(desc.replicas.size(), 2u);
    for (size_t i = 0; i < desc.slabs.size(); ++i) {
      std::set<uint32_t> servers{desc.slabs[i].server_node};
      for (const auto& replica : desc.replicas) {
        servers.insert(replica[i].server_node);
      }
      EXPECT_EQ(servers.size(), 3u) << "slab " << i;
    }
  });
}

TEST(ReplicationTest, ReplicationConsumesProportionalSlabs) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    const uint64_t before = cluster.master().free_slabs();
    ASSERT_TRUE(client.Ralloc("r", 4ULL << 20, 2).ok());
    EXPECT_EQ(cluster.master().free_slabs(), before - 8);
    ASSERT_TRUE(client.Rfree("r").ok());
    EXPECT_EQ(cluster.master().free_slabs(), before);
  });
}

TEST(ReplicationTest, FactorBeyondServersRejected) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    EXPECT_EQ(client.Ralloc("r", 1ULL << 20, 5).code(),
              ErrorCode::kInvalidArgument);
  });
}

TEST(ReplicationTest, WritesFanOutToAllCopies) {
  // White-box: write through the region, then check every copy's server
  // arena holds the same bytes.
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20, 3).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(64 << 10);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 99);
    ASSERT_TRUE((*region)->Write(4096, buf->data).ok());

    auto arena_bytes_at = [&](const SlabLocation& slab) -> const std::byte* {
      for (size_t s = 0; s < cluster.server_count(); ++s) {
        if (cluster.server_node(s).id() == slab.server_node) {
          const MemoryServer& server = cluster.server(s);
          const uint64_t base = reinterpret_cast<uint64_t>(server.arena());
          return server.arena() + (slab.remote_addr - base);
        }
      }
      return nullptr;
    };
    const RegionDesc& desc = (*region)->desc();
    std::vector<SlabLocation> all{desc.slabs[0]};
    for (const auto& replica : desc.replicas) all.push_back(replica[0]);
    ASSERT_EQ(all.size(), 3u);
    for (const SlabLocation& slab : all) {
      const std::byte* arena = arena_bytes_at(slab);
      ASSERT_NE(arena, nullptr);
      EXPECT_EQ(std::memcmp(arena + 4096, buf->begin(), buf->size()), 0);
    }
  });
}

TEST(ReplicationTest, ReadsSurviveServerDeathAfterRemap) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 2ULL << 20, 2).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(1 << 20);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 7);
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());

    // Kill the primary of slab 0; wait for the lease to lapse.
    const uint32_t victim = (*region)->desc().slabs[0].server_node;
    sim::CurrentNode().sim().KillNode(victim);
    sim::Sleep(Millis(400));

    // A fresh map must promote the replica and the data must read back.
    auto fresh = client.Rmap("r", false, /*fresh=*/true);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    EXPECT_NE((*fresh)->desc().slabs[0].server_node, victim);
    auto back = client.AllocBuffer(1 << 20);
    ASSERT_TRUE(back.ok());
    ASSERT_TRUE((*fresh)->Read(0, back->data).ok());
    EXPECT_EQ(std::memcmp(back->begin(), buf->begin(), 1 << 20), 0);
  });
  EXPECT_EQ(cluster.master().live_servers(), 3u);
}

TEST(ReplicationTest, UnreplicatedRegionStillFailsOnServerLoss) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20, 1).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    const uint32_t victim = (*region)->desc().slabs[0].server_node;
    sim::CurrentNode().sim().KillNode(victim);
    sim::Sleep(Millis(400));
    EXPECT_EQ(client.Rmap("r", false, true).code(), ErrorCode::kUnavailable);
    // allow_degraded still hands out the stale table.
    EXPECT_TRUE(client.Rmap("r", true, true).ok());
  });
}

TEST(ReplicationTest, DoubleFailureExhaustsCopies) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 1ULL << 20, 2).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    const RegionDesc& desc = (*region)->desc();
    sim::CurrentNode().sim().KillNode(desc.slabs[0].server_node);
    sim::CurrentNode().sim().KillNode(desc.replicas[0][0].server_node);
    sim::Sleep(Millis(400));
    EXPECT_EQ(client.Rmap("r", false, true).code(), ErrorCode::kUnavailable);
  });
}

TEST(ReplicationTest, AtomicsRejectedOnReplicatedRegions) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r", 4096, 2).ok());
    auto region = client.Rmap("r");
    ASSERT_TRUE(region.ok());
    EXPECT_EQ((*region)->FetchAdd(0, 1).code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ((*region)->CompareSwap(0, 0, 1).code(),
              ErrorCode::kInvalidArgument);
  });
}

TEST(ReplicationTest, SecondClientSeesPromotedPrimary) {
  TestCluster cluster(ReplCluster());
  cluster.SpawnClient(0, [&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("shared", 1ULL << 20, 2).ok());
    auto region = client.Rmap("shared");
    ASSERT_TRUE(region.ok());
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    FillPattern(buf->data, 55);
    ASSERT_TRUE((*region)->Write(0, buf->data).ok());
    sim::CurrentNode().sim().KillNode((*region)->desc().slabs[0].server_node);
    sim::Sleep(Millis(400));
    ASSERT_TRUE(client.NotifyInc("killed").ok());
  });
  bool verified = false;
  cluster.SpawnClient(1, [&](RStoreClient& client) {
    ASSERT_TRUE(client.WaitNotify("killed", 1).ok());
    auto region = client.Rmap("shared");  // first map on this client
    ASSERT_TRUE(region.ok()) << region.status();
    auto buf = client.AllocBuffer(4096);
    ASSERT_TRUE(buf.ok());
    ASSERT_TRUE((*region)->Read(0, buf->data).ok());
    std::vector<std::byte> expect(4096);
    FillPattern(expect, 55);
    EXPECT_EQ(std::memcmp(buf->begin(), expect.data(), 4096), 0);
    verified = true;
  });
  cluster.sim().Run();
  EXPECT_TRUE(verified);
}

TEST(ReplicationTest, ReplicatedWriteCostsMoreThanUnreplicated) {
  TestCluster cluster(ReplCluster());
  cluster.RunClient([&](RStoreClient& client) {
    ASSERT_TRUE(client.Ralloc("r1", 1ULL << 20, 1).ok());
    ASSERT_TRUE(client.Ralloc("r3", 1ULL << 20, 3).ok());
    auto one = client.Rmap("r1");
    auto three = client.Rmap("r3");
    ASSERT_TRUE(one.ok() && three.ok());
    auto buf = client.AllocBuffer(1 << 20);
    ASSERT_TRUE(buf.ok());
    (void)(*one)->Write(0, buf->data);    // warm connections
    (void)(*three)->Write(0, buf->data);
    const sim::Nanos t0 = sim::Now();
    ASSERT_TRUE((*one)->Write(0, buf->data).ok());
    const sim::Nanos single = sim::Now() - t0;
    const sim::Nanos t1 = sim::Now();
    ASSERT_TRUE((*three)->Write(0, buf->data).ok());
    const sim::Nanos repl = sim::Now() - t1;
    // 3x the egress bytes through one client NIC: ~3x the time.
    EXPECT_GT(repl, 2 * single);
    // Reads are unaffected (primary only).
    const sim::Nanos t2 = sim::Now();
    ASSERT_TRUE((*three)->Read(0, buf->data).ok());
    const sim::Nanos r3 = sim::Now() - t2;
    EXPECT_LT(r3, single * 3 / 2);
  });
}

}  // namespace
}  // namespace rstore::core
