// Tests for the wire serialization and the two-sided RPC layer: request/
// response round trips, error propagation, concurrency, pipelining, server
// CPU accounting, and failure handling.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "rpc/rpc.h"
#include "rpc/wire.h"
#include "sim/simulation.h"

namespace rstore::rpc {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Nanos;

// ------------------------------------------------------------------ wire --
TEST(WireTest, RoundTripsScalars) {
  Writer w;
  w.U8(7);
  w.U32(123456);
  w.U64(0xDEADBEEFCAFEBABEULL);
  w.I64(-42);
  w.F64(3.25);
  w.Bool(true);
  Reader r(w.buffer());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double f64 = 0;
  bool b = false;
  EXPECT_TRUE(r.U8(&u8));
  EXPECT_TRUE(r.U32(&u32));
  EXPECT_TRUE(r.U64(&u64));
  EXPECT_TRUE(r.I64(&i64));
  EXPECT_TRUE(r.F64(&f64));
  EXPECT_TRUE(r.Bool(&b));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(r.Remaining(), 0u);
  EXPECT_TRUE(r.ok());
}

TEST(WireTest, RoundTripsStringsAndBytes) {
  Writer w;
  w.Str("hello rstore");
  w.Str("");
  std::vector<std::byte> blob(300);
  for (size_t i = 0; i < blob.size(); ++i) blob[i] = std::byte(i & 0xFF);
  w.Bytes(blob);
  Reader r(w.buffer());
  std::string a, b;
  std::vector<std::byte> out;
  EXPECT_TRUE(r.Str(&a));
  EXPECT_TRUE(r.Str(&b));
  EXPECT_TRUE(r.Bytes(&out));
  EXPECT_EQ(a, "hello rstore");
  EXPECT_EQ(b, "");
  EXPECT_EQ(out, blob);
}

TEST(WireTest, BytesViewIsZeroCopy) {
  Writer w;
  std::vector<std::byte> blob(64, std::byte{0x42});
  w.Bytes(blob);
  Reader r(w.buffer());
  std::span<const std::byte> view;
  EXPECT_TRUE(r.BytesView(&view));
  EXPECT_EQ(view.size(), 64u);
  EXPECT_EQ(view.data(), w.buffer().data() + 4);  // after length prefix
}

TEST(WireTest, UnderflowFailsClosed) {
  Writer w;
  w.U32(7);
  Reader r(w.buffer());
  uint64_t v;
  EXPECT_FALSE(r.U64(&v));  // only 4 bytes present
  EXPECT_FALSE(r.ok());
  uint32_t u;
  EXPECT_FALSE(r.U32(&u));  // poisoned
}

TEST(WireTest, TruncatedStringFailsClosed) {
  Writer w;
  w.U32(1000);  // claims 1000 bytes, provides none
  Reader r(w.buffer());
  std::string s;
  EXPECT_FALSE(r.Str(&s));
  EXPECT_FALSE(r.ok());
}

// ------------------------------------------------------------------- rpc --
class RpcFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kService = 42;
  static constexpr uint32_t kEcho = 1;
  static constexpr uint32_t kAdd = 2;
  static constexpr uint32_t kFailing = 3;
  static constexpr uint32_t kSlow = 4;

  RpcFixture() : net(sim) {
    server_node = &sim.AddNode("server");
    client_node = &sim.AddNode("client");
    server_dev = &net.AddDevice(*server_node);
    client_dev = &net.AddDevice(*client_node);
    server = std::make_unique<RpcServer>(*server_dev, kService);
    server->RegisterHandler(kEcho, [](Reader& req, Writer& resp) {
      std::vector<std::byte> data;
      if (!req.Bytes(&data)) {
        return Status(ErrorCode::kInvalidArgument, "bad echo request");
      }
      resp.Bytes(data);
      return Status::Ok();
    });
    server->RegisterHandler(kAdd, [](Reader& req, Writer& resp) {
      uint64_t a = 0, b = 0;
      if (!req.U64(&a) || !req.U64(&b)) {
        return Status(ErrorCode::kInvalidArgument, "bad add request");
      }
      resp.U64(a + b);
      return Status::Ok();
    });
    server->RegisterHandler(kFailing, [](Reader&, Writer&) {
      return Status(ErrorCode::kPermissionDenied, "computer says no");
    });
    server->RegisterHandler(kSlow, [](Reader&, Writer& resp) {
      sim::Sleep(sim::Seconds(120));  // beyond default call timeout
      resp.U64(1);
      return Status::Ok();
    });
    server->Start();
  }

  std::unique_ptr<RpcClient> MustConnect() {
    auto c = RpcClient::Connect(*client_dev, server_node->id(), kService);
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).value();
  }

  sim::Simulation sim;
  verbs::Network net;
  sim::Node* server_node;
  sim::Node* client_node;
  verbs::Device* server_dev;
  verbs::Device* client_dev;
  std::unique_ptr<RpcServer> server;
};

TEST_F(RpcFixture, EchoRoundTrip) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    Writer req;
    std::vector<std::byte> payload(100, std::byte{0x61});
    req.Bytes(payload);
    auto resp = client->Call(kEcho, req);
    ASSERT_TRUE(resp.ok()) << resp.status();
    Reader r(*resp);
    std::vector<std::byte> out;
    ASSERT_TRUE(r.Bytes(&out));
    EXPECT_EQ(out, payload);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server->calls_served(), 1u);
}

TEST_F(RpcFixture, TypedHandler) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    Writer req;
    req.U64(30);
    req.U64(12);
    auto resp = client->Call(kAdd, req);
    ASSERT_TRUE(resp.ok());
    Reader r(*resp);
    uint64_t sum = 0;
    ASSERT_TRUE(r.U64(&sum));
    EXPECT_EQ(sum, 42u);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, HandlerErrorPropagatesCodeAndMessage) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    auto resp = client->Call(kFailing, Writer{});
    EXPECT_FALSE(resp.ok());
    EXPECT_EQ(resp.code(), ErrorCode::kPermissionDenied);
    EXPECT_EQ(resp.status().message(), "computer says no");
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, UnknownMethodReturnsNotFound) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    auto resp = client->Call(999, Writer{});
    EXPECT_EQ(resp.code(), ErrorCode::kNotFound);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, ManySequentialCalls) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    for (uint64_t i = 0; i < 200; ++i) {
      Writer req;
      req.U64(i);
      req.U64(i);
      auto resp = client->Call(kAdd, req);
      ASSERT_TRUE(resp.ok());
      Reader r(*resp);
      uint64_t sum = 0;
      ASSERT_TRUE(r.U64(&sum));
      ASSERT_EQ(sum, 2 * i);
    }
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(server->calls_served(), 200u);
}

TEST_F(RpcFixture, ConcurrentCallersShareOneClient) {
  int completed = 0;
  client_node->Spawn("main", [&] {
    auto client = MustConnect();
    RpcClient* raw = client.get();
    auto worker = [&completed, raw](uint64_t base) {
      for (uint64_t i = 0; i < 20; ++i) {
        Writer req;
        req.U64(base);
        req.U64(i);
        auto resp = raw->Call(kAdd, req);
        ASSERT_TRUE(resp.ok()) << resp.status();
        Reader r(*resp);
        uint64_t sum = 0;
        ASSERT_TRUE(r.U64(&sum));
        ASSERT_EQ(sum, base + i);
        ++completed;
      }
    };
    // Spawn three sibling threads sharing the client, then use it too.
    sim::Node& node = sim::CurrentNode();
    node.Spawn("w1", [&worker] { worker(1000); });
    node.Spawn("w2", [&worker] { worker(2000); });
    node.Spawn("w3", [&worker] { worker(3000); });
    worker(4000);
    // Keep the client alive until the siblings drain.
    while (completed < 80) sim::Sleep(Millis(1));
  });
  sim.Run();
  EXPECT_EQ(completed, 80);
}

TEST_F(RpcFixture, TwoClientsAreServedConcurrently) {
  sim::Node* client2_node = &sim.AddNode("client2");
  verbs::Device* client2_dev = &net.AddDevice(*client2_node);
  int done = 0;
  auto spawn_client = [&](sim::Node* n, verbs::Device* d) {
    n->Spawn("c", [&, d] {
      auto c = RpcClient::Connect(*d, server_node->id(), kService);
      ASSERT_TRUE(c.ok());
      Writer req;
      req.U64(1);
      req.U64(2);
      ASSERT_TRUE((*c)->Call(kAdd, req).ok());
      ++done;
    });
  };
  spawn_client(client_node, client_dev);
  spawn_client(client2_node, client2_dev);
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_EQ(server->calls_served(), 2u);
}

TEST_F(RpcFixture, CallToDeadServerFails) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    sim::CurrentNode().sim().KillNode(server_node->id());
    sim::Sleep(Micros(10));
    auto resp = client->Call(kEcho, Writer{});
    EXPECT_FALSE(resp.ok());
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, SlowHandlerTimesOutClientSide) {
  bool done = false;
  client_node->Spawn("client", [&] {
    RpcOptions opts;
    opts.call_timeout = Millis(50);
    auto c = RpcClient::Connect(*client_dev, server_node->id(), kService,
                                opts);
    ASSERT_TRUE(c.ok());
    auto resp = (*c)->Call(kSlow, Writer{});
    EXPECT_EQ(resp.code(), ErrorCode::kTimedOut);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, OversizedRequestRejectedLocally) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    Writer req;
    std::vector<std::byte> big(128 * 1024);  // > default 64 KiB buffer
    req.Bytes(big);
    auto resp = client->Call(kEcho, req);
    EXPECT_EQ(resp.code(), ErrorCode::kInvalidArgument);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(RpcFixture, ServerChargesCpuPerCall) {
  // The whole point of the baseline: two-sided calls consume server CPU.
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    for (int i = 0; i < 50; ++i) {
      Writer req;
      std::vector<std::byte> payload(1024);
      req.Bytes(payload);
      ASSERT_TRUE(client->Call(kEcho, req).ok());
    }
  });
  sim.Run();
  EXPECT_EQ(server->calls_served(), 50u);
  // >= 50 * handler cost; marshalling adds more.
  EXPECT_GE(server->cpu_time(), 50 * net.cpu_model().rpc_handler_ns);
}

TEST_F(RpcFixture, RpcLatencyIsWorseThanRawVerbs) {
  // Architectural sanity check for E1/E6: a 4 KiB echo costs more than
  // 2x the one-way base latency plus handler costs.
  Nanos rpc_latency = 0;
  client_node->Spawn("client", [&] {
    auto client = MustConnect();
    Writer req;
    std::vector<std::byte> payload(4096);
    req.Bytes(payload);
    ASSERT_TRUE(client->Call(kEcho, req).ok());  // warm
    const Nanos t0 = sim::Now();
    ASSERT_TRUE(client->Call(kEcho, req).ok());
    rpc_latency = sim::Now() - t0;
  });
  sim.Run();
  const auto& nic = net.fabric().config();
  EXPECT_GT(rpc_latency,
            2 * nic.base_latency + net.cpu_model().rpc_handler_ns);
}

}  // namespace
}  // namespace rstore::rpc
