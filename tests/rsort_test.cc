// Tests for RSort: record generation/validation primitives and the
// distributed sample sort end-to-end (sortedness, multiset preservation,
// scaling behaviour, skew robustness).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/cluster.h"
#include "rsort/records.h"
#include "rsort/rsort.h"

namespace rstore::sort {
namespace {

using core::ClusterConfig;
using core::RStoreClient;
using core::TestCluster;

// --------------------------------------------------------------- records --
TEST(RecordsTest, GenerationIsDeterministicAndIndexed) {
  std::byte a[kRecordBytes], b[kRecordBytes];
  GenerateRecord(1, 7, a);
  GenerateRecord(1, 7, b);
  EXPECT_EQ(std::memcmp(a, b, kRecordBytes), 0);
  GenerateRecord(1, 8, b);
  EXPECT_NE(std::memcmp(a, b, kRecordBytes), 0);
  GenerateRecord(2, 7, b);
  EXPECT_NE(std::memcmp(a, b, kRecordBytes), 0);
  // The record index is recoverable from the payload.
  uint64_t idx = 0;
  std::memcpy(&idx, a + kKeyBytes, sizeof(idx));
  EXPECT_EQ(idx, 7u);
}

TEST(RecordsTest, GenerateRecordsMatchesSingleCalls) {
  std::vector<std::byte> bulk(5 * kRecordBytes);
  GenerateRecords(3, 100, 5, bulk.data());
  for (uint64_t i = 0; i < 5; ++i) {
    std::byte one[kRecordBytes];
    GenerateRecord(3, 100 + i, one);
    EXPECT_EQ(std::memcmp(bulk.data() + i * kRecordBytes, one, kRecordBytes),
              0);
  }
}

TEST(RecordsTest, SortRecordsSortsAndChecksumInvariant) {
  std::vector<std::byte> recs(1000 * kRecordBytes);
  GenerateRecords(9, 0, 1000, recs.data());
  EXPECT_FALSE(IsSorted(recs.data(), 1000));
  const uint64_t before = UnorderedChecksum(recs.data(), 1000);
  SortRecords(recs.data(), 1000);
  EXPECT_TRUE(IsSorted(recs.data(), 1000));
  EXPECT_EQ(UnorderedChecksum(recs.data(), 1000), before);
}

TEST(RecordsTest, ChecksumIsOrderIndependentButContentSensitive) {
  std::vector<std::byte> a(10 * kRecordBytes), b(10 * kRecordBytes);
  GenerateRecords(4, 0, 10, a.data());
  // b = a with first two records swapped.
  b = a;
  std::vector<std::byte> tmp(kRecordBytes);
  std::memcpy(tmp.data(), b.data(), kRecordBytes);
  std::memcpy(b.data(), b.data() + kRecordBytes, kRecordBytes);
  std::memcpy(b.data() + kRecordBytes, tmp.data(), kRecordBytes);
  EXPECT_EQ(UnorderedChecksum(a.data(), 10), UnorderedChecksum(b.data(), 10));
  b[kRecordBytes + 50] ^= std::byte{1};  // corrupt one payload byte
  EXPECT_NE(UnorderedChecksum(a.data(), 10), UnorderedChecksum(b.data(), 10));
}

TEST(RecordsTest, EdgeCases) {
  EXPECT_TRUE(IsSorted(nullptr, 0));
  std::byte one[kRecordBytes];
  GenerateRecord(5, 0, one);
  EXPECT_TRUE(IsSorted(one, 1));
  EXPECT_EQ(UnorderedChecksum(nullptr, 0), 0u);
  SortRecords(one, 1);  // no-op, must not crash
}

// --------------------------------------------------------------- rsort ----
ClusterConfig SortCluster(uint32_t workers, uint64_t capacity_mb = 96) {
  ClusterConfig cfg;
  cfg.memory_servers = 4;
  cfg.client_nodes = workers;
  cfg.server_capacity = capacity_mb << 20;
  cfg.master.slab_size = 1ULL << 20;
  return cfg;
}

struct SortCase {
  uint32_t workers;
  uint64_t records;
};

class SortFixture : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortFixture, SortsAndPreservesMultiset) {
  const SortCase p = GetParam();
  TestCluster cluster(SortCluster(p.workers));
  int done = 0;
  for (uint32_t w = 0; w < p.workers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      SortConfig cfg;
      cfg.worker_id = w;
      cfg.num_workers = p.workers;
      cfg.total_records = p.records;
      cfg.seed = 77;
      SortWorker worker(client, cfg);
      ASSERT_TRUE(worker.GenerateInput().ok());
      ASSERT_TRUE(client.NotifyInc("gen").ok());
      ASSERT_TRUE(client.WaitNotify("gen", p.workers).ok());
      auto stats = worker.Sort();
      ASSERT_TRUE(stats.ok()) << stats.status();
      if (w == 0) {
        EXPECT_TRUE(ValidateSortedOutput(client, cfg).ok());
      }
      ++done;
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(done, static_cast<int>(p.workers));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortFixture,
    ::testing::Values(SortCase{1, 5'000}, SortCase{2, 20'000},
                      SortCase{4, 50'000}, SortCase{4, 100'003}),
    [](const ::testing::TestParamInfo<SortCase>& info) {
      return std::to_string(info.param.workers) + "w_" +
             std::to_string(info.param.records) + "r";
    });

TEST(SortTest, RecordCountsConserved) {
  constexpr uint32_t kWorkers = 4;
  constexpr uint64_t kRecords = 40'000;
  TestCluster cluster(SortCluster(kWorkers));
  uint64_t total_out = 0;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      SortConfig cfg{.worker_id = w,
                     .num_workers = kWorkers,
                     .total_records = kRecords,
                     .seed = 5};
      SortWorker worker(client, cfg);
      ASSERT_TRUE(worker.GenerateInput().ok());
      ASSERT_TRUE(client.NotifyInc("gen").ok());
      ASSERT_TRUE(client.WaitNotify("gen", kWorkers).ok());
      auto stats = worker.Sort();
      ASSERT_TRUE(stats.ok());
      total_out += stats->records_out;
      EXPECT_EQ(stats->records_in, kRecords / kWorkers);
    });
  }
  cluster.sim().Run();
  EXPECT_EQ(total_out, kRecords);
}

TEST(SortTest, MoreWorkersSortFaster) {
  auto run = [](uint32_t workers) {
    constexpr uint64_t kRecords = 200'000;  // 20 MB
    TestCluster cluster(SortCluster(workers, 128));
    sim::Nanos slowest = 0;
    for (uint32_t w = 0; w < workers; ++w) {
      cluster.SpawnClient(w, [&, w, workers](RStoreClient& client) {
        SortConfig cfg{.worker_id = w,
                       .num_workers = workers,
                       .total_records = kRecords,
                       .seed = 11};
        SortWorker worker(client, cfg);
        ASSERT_TRUE(worker.GenerateInput().ok());
        ASSERT_TRUE(client.NotifyInc("gen").ok());
        ASSERT_TRUE(client.WaitNotify("gen", workers).ok());
        auto stats = worker.Sort();
        ASSERT_TRUE(stats.ok());
        slowest = std::max(slowest, stats->total_time);
      });
    }
    cluster.sim().Run();
    return slowest;
  };
  const sim::Nanos two = run(2);
  const sim::Nanos eight = run(8);
  EXPECT_LT(eight, two * 2 / 3);
}

TEST(SortTest, ValidationCatchesCorruption) {
  constexpr uint32_t kWorkers = 2;
  constexpr uint64_t kRecords = 10'000;
  TestCluster cluster(SortCluster(kWorkers));
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      SortConfig cfg{.worker_id = w,
                     .num_workers = kWorkers,
                     .total_records = kRecords,
                     .seed = 3};
      SortWorker worker(client, cfg);
      ASSERT_TRUE(worker.GenerateInput().ok());
      ASSERT_TRUE(client.NotifyInc("gen").ok());
      ASSERT_TRUE(client.WaitNotify("gen", kWorkers).ok());
      ASSERT_TRUE(worker.Sort().ok());
      ASSERT_TRUE(client.NotifyInc("sorted").ok());
      if (w != 0) return;
      ASSERT_TRUE(client.WaitNotify("sorted", kWorkers).ok());
      ASSERT_TRUE(ValidateSortedOutput(client, cfg).ok());
      // Corrupt one byte of the output; validation must now fail.
      auto region = client.Rmap("rsort/output");
      ASSERT_TRUE(region.ok());
      auto buf = client.AllocBuffer(1);
      ASSERT_TRUE(buf.ok());
      buf->begin()[0] = std::byte{0xFF};
      ASSERT_TRUE(
          (*region)->Write(kRecordBytes * 17 + kKeyBytes + 20, buf->data)
              .ok());
      EXPECT_FALSE(ValidateSortedOutput(client, cfg).ok());
    });
  }
  cluster.sim().Run();
}

TEST(SortTest, SkewedKeysStillBalanceViaSampling) {
  // All keys share a common prefix byte; splitters must still divide the
  // space (sampling sees the real distribution, not the key space).
  constexpr uint32_t kWorkers = 4;
  constexpr uint64_t kRecords = 40'000;
  TestCluster cluster(SortCluster(kWorkers));
  std::vector<uint64_t> outs(kWorkers, 0);
  for (uint32_t w = 0; w < kWorkers; ++w) {
    cluster.SpawnClient(w, [&, w](RStoreClient& client) {
      SortConfig cfg{.worker_id = w,
                     .num_workers = kWorkers,
                     .total_records = kRecords,
                     .seed = 13,
                     .samples_per_worker = 256,
                     .job = "skew"};
      SortWorker worker(client, cfg);
      ASSERT_TRUE(worker.GenerateInput().ok());
      ASSERT_TRUE(client.NotifyInc("gen").ok());
      ASSERT_TRUE(client.WaitNotify("gen", kWorkers).ok());
      auto stats = worker.Sort();
      ASSERT_TRUE(stats.ok());
      outs[w] = stats->records_out;
    });
  }
  cluster.sim().Run();
  const uint64_t ideal = kRecords / kWorkers;
  for (uint32_t w = 0; w < kWorkers; ++w) {
    EXPECT_GT(outs[w], ideal / 2) << "worker " << w;
    EXPECT_LT(outs[w], ideal * 2) << "worker " << w;
  }
}

}  // namespace
}  // namespace rstore::sort
