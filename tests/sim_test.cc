// Unit tests for the virtual-time simulator: clock behaviour, cooperative
// scheduling determinism, condition variables, failure injection, and the
// CPU/disk cost models.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "explore/policy.h"
#include "sim/cost_model.h"
#include "sim/simulation.h"
#include "sim/time.h"

namespace rstore::sim {
namespace {

TEST(TimeTest, Literals) {
  EXPECT_EQ(Micros(1.3), 1300u);
  EXPECT_EQ(Millis(2), 2'000'000u);
  EXPECT_EQ(Seconds(1), 1'000'000'000u);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(31.7)), 31.7);
}

TEST(TimeTest, TransferTimeRoundsUpAndNeverZero) {
  EXPECT_EQ(TransferTime(0, 1e9), 0u);
  EXPECT_GE(TransferTime(1, 1e12), 1u);  // sub-ns rounds up to 1
  // 1 GiB at 8 Gb/s = 2^30 bytes * 8 / 8e9 s ≈ 1.0737 s.
  EXPECT_NEAR(ToSeconds(TransferTime(1ULL << 30, 8e9)), 1.0737, 0.001);
}

TEST(SimulationTest, SleepAdvancesVirtualClock) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  Nanos observed = 0;
  n.Spawn("main", [&] {
    EXPECT_EQ(Now(), 0u);
    Sleep(Micros(5));
    observed = Now();
  });
  sim.Run();
  EXPECT_EQ(observed, Micros(5));
  EXPECT_EQ(sim.NowNanos(), Micros(5));
}

TEST(SimulationTest, ComputeIsInstantInVirtualTime) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  n.Spawn("main", [&] {
    volatile uint64_t x = 0;
    for (int i = 0; i < 100000; ++i) x = x + static_cast<uint64_t>(i);
    EXPECT_EQ(Now(), 0u);  // pure compute costs nothing unless charged
  });
  sim.Run();
}

TEST(SimulationTest, ThreadsInterleaveDeterministically) {
  // Two runs with the same seed produce the same interleaving. The trace
  // is ONE host vector shared by threads on three nodes: the global order
  // of same-instant pushes from different partitions is defined only
  // under serialized dispatch (virtual time is deterministic either way),
  // so pin serialize_dispatch for the partitioned-scheduler gate.
  auto run = [] {
    Simulation sim(SimConfig{.seed = 77, .serialize_dispatch = true});
    std::vector<std::string> trace;
    for (int i = 0; i < 3; ++i) {
      Node& n = sim.AddNode("n" + std::to_string(i));
      n.Spawn("w", [&trace, i] {
        for (int k = 0; k < 3; ++k) {
          Sleep(Micros(10 * (i + 1)));
          trace.push_back("n" + std::to_string(i) + ":" + std::to_string(k));
        }
      });
    }
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulationTest, SameInstantEventsRunInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.At(100, [&] { order.push_back(1); });
  sim.At(100, [&] { order.push_back(2); });
  sim.At(50, [&] { order.push_back(0); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// THE equal-vtime tie-break rule, documented on Event in sim/simulation.h:
// events at one virtual instant dispatch in FIFO order of *scheduling* —
// the heap orders by (t, seq) and thread wakes and plain callbacks share
// one seq counter, so kind never matters. The baseline exploration policy
// must preserve exactly this order (its pick 0 *is* this order).
TEST(SimulationTest, SameInstantEventsDispatchInFifoOrder) {
  // This pins the *legacy* single-queue interleaving: a driver callback
  // notifying a node-owned CondVar interleaved with same-instant driver
  // callbacks shares one seq counter. Under the partitioned scheduler the
  // driver and node "a" live on different partitions, so that interleaving
  // cannot exist (cross-partition wakes merge at epoch boundaries) — the
  // per-partition FIFO rule is pinned by partition_test.cc instead.
  if (PartitionedEnvRequested()) {
    GTEST_SKIP() << "pins legacy single-queue interleaving";
  }
  auto run = [](explore::SchedulePolicy* policy) {
    Simulation sim;
    if (policy != nullptr) sim.AttachPolicy(policy);
    Node& n = sim.AddNode("a");
    CondVar cv(sim);
    std::vector<int> order;
    for (int i = 0; i < 2; ++i) {
      n.Spawn("waiter", [&, i] {
        cv.Wait();
        order.push_back(10 + i);
      });
    }
    // From a driver callback at t=100, interleave thread wakes with plain
    // callbacks at the same instant: wake(w0), cb(0), wake(w1), cb(1).
    sim.At(100, [&] {
      cv.NotifyOne();
      sim.At(100, [&] { order.push_back(0); });
      cv.NotifyOne();
      sim.At(100, [&] { order.push_back(1); });
    });
    sim.Run();
    return order;
  };
  const std::vector<int> expected{10, 0, 11, 1};
  EXPECT_EQ(run(nullptr), expected);
  explore::BaselinePolicy baseline;
  EXPECT_EQ(run(&baseline), expected);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  int steps = 0;
  n.Spawn("main", [&] {
    for (int i = 0; i < 10; ++i) {
      Sleep(Millis(1));
      ++steps;
    }
  });
  sim.RunUntil(Millis(3));
  EXPECT_EQ(steps, 3);
  EXPECT_EQ(sim.NowNanos(), Millis(3));
  sim.Run();
  EXPECT_EQ(steps, 10);
}

TEST(SimulationTest, YieldRunsAfterAlreadyQueuedEvents) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  std::vector<int> order;
  n.Spawn("first", [&] {
    order.push_back(1);
    Yield();
    order.push_back(3);
  });
  n.Spawn("second", [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationTest, SpawnFromInsideThread) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  bool child_ran = false;
  n.Spawn("parent", [&] {
    Sleep(Micros(1));
    CurrentNode().Spawn("child", [&] { child_ran = true; });
  });
  sim.Run();
  EXPECT_TRUE(child_ran);
  EXPECT_EQ(sim.live_thread_count(), 0u);
}

// -------------------------------------------------------------- CondVar --
TEST(CondVarTest, NotifyOneWakesSingleWaiter) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    n.Spawn("waiter", [&] {
      cv.Wait();
      ++woken;
    });
  }
  n.Spawn("notifier", [&] {
    Sleep(Micros(10));
    cv.NotifyOne();
    Sleep(Micros(10));
    cv.NotifyAll();
  });
  sim.RunUntil(Micros(15));
  EXPECT_EQ(woken, 1);
  sim.Run();
  EXPECT_EQ(woken, 3);
}

TEST(CondVarTest, WaitForTimesOut) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  bool notified = true;
  Nanos end = 0;
  n.Spawn("waiter", [&] {
    notified = cv.WaitFor(Micros(50));
    end = Now();
  });
  sim.Run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(end, Micros(50));
}

TEST(CondVarTest, WaitForReturnsTrueOnNotify) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  bool notified = false;
  Nanos end = 0;
  n.Spawn("waiter", [&] {
    notified = cv.WaitFor(Micros(50));
    end = Now();
  });
  n.Spawn("notifier", [&] {
    Sleep(Micros(10));
    cv.NotifyOne();
  });
  sim.Run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(end, Micros(10));
}

TEST(CondVarTest, StaleTimeoutAfterNotifyIsIgnored) {
  // Thread is notified before its timeout; the later timeout event must
  // not wake the thread's *next* wait.
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  std::vector<Nanos> wakes;
  n.Spawn("waiter", [&] {
    EXPECT_TRUE(cv.WaitFor(Micros(100)));
    wakes.push_back(Now());
    cv.Wait();  // must not be woken by the stale 100us timeout
    wakes.push_back(Now());
  });
  n.Spawn("notifier", [&] {
    Sleep(Micros(10));
    cv.NotifyOne();
    Sleep(Millis(1));
    cv.NotifyOne();
  });
  sim.Run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], Micros(10));
  EXPECT_EQ(wakes[1], Micros(10) + Millis(1));
}

TEST(CondVarTest, WaitUntilForPredicate) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  int value = 0;
  bool ok = false;
  n.Spawn("waiter", [&] {
    ok = cv.WaitUntilFor([&] { return value == 3; }, Millis(10));
  });
  n.Spawn("producer", [&] {
    for (int i = 1; i <= 3; ++i) {
      Sleep(Micros(100));
      value = i;
      cv.NotifyAll();
    }
  });
  sim.Run();
  EXPECT_TRUE(ok);
}

TEST(CondVarTest, WaitUntilForTimesOutWhenPredicateNeverTrue) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CondVar cv(sim);
  bool ok = true;
  Nanos end = 0;
  n.Spawn("waiter", [&] {
    ok = cv.WaitUntilFor([] { return false; }, Millis(2));
    end = Now();
  });
  sim.Run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(end, Millis(2));
}

// ----------------------------------------------------- Failure injection --
TEST(KillTest, BlockedThreadsUnwindWithRaii) {
  Simulation sim;
  Node& victim = sim.AddNode("victim");
  Node& killer = sim.AddNode("killer");
  CondVar cv(sim);
  bool cleaned_up = false;
  victim.Spawn("server", [&] {
    struct Guard {
      bool* flag;
      ~Guard() { *flag = true; }
    } guard{&cleaned_up};
    cv.Wait();  // blocks forever; killed mid-wait
    FAIL() << "should never wake normally";
  });
  killer.Spawn("killer", [&] {
    Sleep(Micros(5));
    CurrentNode().sim().KillNode(victim.id());
  });
  sim.Run();
  EXPECT_TRUE(cleaned_up);
  EXPECT_FALSE(victim.alive());
  EXPECT_EQ(victim.live_threads(), 0u);
}

TEST(KillTest, RunningThreadDiesAtNextBlockingCall) {
  Simulation sim;
  Node& victim = sim.AddNode("victim");
  int phase = 0;
  victim.Spawn("worker", [&] {
    phase = 1;
    CurrentNode().sim().KillNode(CurrentNode().id());  // self-kill
    phase = 2;      // still runs: kill takes effect at next yield
    Sleep(Micros(1));  // throws ThreadKilled
    phase = 3;
  });
  sim.Run();
  EXPECT_EQ(phase, 2);
}

TEST(KillTest, KillIsIdempotent) {
  Simulation sim;
  Node& victim = sim.AddNode("victim");
  victim.Spawn("w", [&] { Sleep(Seconds(100)); });
  sim.KillNode(victim.id());
  sim.KillNode(victim.id());
  sim.Run();
  EXPECT_EQ(victim.live_threads(), 0u);
}

TEST(KillTest, SleepingThreadKilledBeforeWake) {
  Simulation sim;
  Node& victim = sim.AddNode("victim");
  bool woke_normally = false;
  victim.Spawn("sleeper", [&] {
    Sleep(Seconds(10));
    woke_normally = true;
  });
  sim.After(Millis(1), [&] { sim.KillNode(victim.id()); });
  sim.Run();
  EXPECT_FALSE(woke_normally);
  // Clock must not have jumped to the 10s wake.
  EXPECT_LT(sim.NowNanos(), Seconds(1));
}

TEST(ShutdownTest, DestructorUnwindsBlockedThreads) {
  bool cleaned_up = false;
  {
    Simulation sim;
    Node& n = sim.AddNode("a");
    auto cv = std::make_shared<CondVar>(sim);
    n.Spawn("waiter", [&cleaned_up, cv] {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } guard{&cleaned_up};
      cv->Wait();
    });
    sim.Run();  // quiescent: waiter blocked forever
    EXPECT_EQ(sim.live_thread_count(), 1u);
  }
  EXPECT_TRUE(cleaned_up);
}

// ------------------------------------------------------------ Cost model --
TEST(CostModelTest, MemcpyCostMatchesBandwidth) {
  CpuCostModel m;  // 40 Gb/s = 5 GB/s
  EXPECT_NEAR(ToSeconds(MemcpyCost(m, 5ULL << 30)), 1.0737, 0.01);
  EXPECT_EQ(MemcpyCost(m, 0), 0u);
}

TEST(CostModelTest, SortCostIsNLogN) {
  CpuCostModel m;
  EXPECT_EQ(SortCost(m, 0), 0u);
  EXPECT_EQ(SortCost(m, 1), 0u);
  const Nanos c1m = SortCost(m, 1 << 20);
  const Nanos c2m = SortCost(m, 1 << 21);
  // Doubling n slightly more than doubles the cost.
  EXPECT_GT(c2m, 2 * c1m);
  EXPECT_LT(c2m, 3 * c1m);
}

TEST(CostModelTest, ChargeCpuAdvancesClock) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  CpuCostModel m;
  n.Spawn("w", [&] {
    ChargeCpu(MemcpyCost(m, 1 << 20));
    EXPECT_GT(Now(), 0u);
  });
  sim.Run();
}

TEST(SimDiskTest, SequentialReadTimeMatchesBandwidth) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  DiskCostModel model;  // 1.2 Gb/s read
  SimDisk disk(sim, model);
  Nanos elapsed = 0;
  n.Spawn("reader", [&] {
    const Nanos start = Now();
    disk.Read(150'000'000, /*sequential=*/true);  // 150 MB at 150 MB/s
    elapsed = Now() - start;
  });
  sim.Run();
  EXPECT_NEAR(ToSeconds(elapsed), 1.0, 0.01);
  EXPECT_EQ(disk.bytes_read(), 150'000'000u);
}

TEST(SimDiskTest, RandomIoPaysSeek) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  SimDisk disk(sim, DiskCostModel{});
  Nanos seq_time = 0, rand_time = 0;
  n.Spawn("io", [&] {
    Nanos t0 = Now();
    disk.Read(4096, true);
    seq_time = Now() - t0;
    t0 = Now();
    disk.Read(4096, false);
    rand_time = Now() - t0;
  });
  sim.Run();
  EXPECT_GE(rand_time, seq_time + Millis(7));
}

TEST(SimDiskTest, ConcurrentRequestsSerializeOnSpindle) {
  Simulation sim;
  Node& n = sim.AddNode("a");
  SimDisk disk(sim, DiskCostModel{});
  Nanos done_a = 0, done_b = 0;
  n.Spawn("a", [&] {
    disk.Write(125'000'000, true);  // 1 s at 125 MB/s
    done_a = Now();
  });
  n.Spawn("b", [&] {
    disk.Write(125'000'000, true);
    done_b = Now();
  });
  sim.Run();
  const Nanos last = std::max(done_a, done_b);
  EXPECT_NEAR(ToSeconds(last), 2.0, 0.02);  // serialized, not parallel
}

}  // namespace
}  // namespace rstore::sim
