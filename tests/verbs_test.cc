// Tests for the rverbs layer: memory registration and key checks, RC
// queue-pair data path (SEND/RECV, RDMA READ/WRITE, WRITE_WITH_IMM,
// atomics), completion ordering, error semantics (access violations, RNR,
// retry-exceeded, flush), and connection management.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sim/simulation.h"
#include "verbs/verbs.h"

namespace rstore::verbs {
namespace {

using sim::Micros;
using sim::Millis;
using sim::Nanos;
using sim::Seconds;

// Spins up two nodes with devices and a connected QP pair. Server-side
// resources are owned by the fixture for inspection.
class VerbsFixture : public ::testing::Test {
 protected:
  static constexpr uint32_t kService = 7;

  VerbsFixture() : net(sim) {
    client_node = &sim.AddNode("client");
    server_node = &sim.AddNode("server");
    client_dev = &net.AddDevice(*client_node);
    server_dev = &net.AddDevice(*server_node);
  }

  // Runs `client_fn` on the client against an echo-less server that just
  // accepts one connection and exposes its QP via `server_qp`.
  void RunPair(std::function<void(QueuePair&)> client_fn,
               std::function<void(QueuePair&)> server_fn = {}) {
    net.Listen(*server_dev, kService);
    server_node->Spawn("server", [this] {
      auto qp = net.Listen(*server_dev, kService).Accept();
      ASSERT_TRUE(qp.ok());
      server_qp = *qp;
      server_ready = true;
      if (server_fn_) server_fn_(**qp);
    });
    client_node->Spawn("client", [this, client_fn] {
      auto qp = net.Connect(*client_dev, server_node->id(), kService);
      ASSERT_TRUE(qp.ok()) << qp.status();
      client_qp = *qp;
      client_fn(**qp);
    });
    server_fn_ = std::move(server_fn);
    sim.Run();
  }

  // Registers a fresh buffer of `n` bytes on `dev` with `access`, using a
  // lazily created per-device PD.
  MemoryRegion* Register(Device* dev, std::vector<std::byte>& buf, size_t n,
                         uint32_t access) {
    buf.resize(n);
    auto it = pds_.find(dev);
    if (it == pds_.end()) it = pds_.emplace(dev, &dev->CreatePd()).first;
    auto mr = it->second->RegisterMemory(buf.data(), buf.size(), access);
    EXPECT_TRUE(mr.ok()) << mr.status();
    return *mr;
  }

  std::unordered_map<Device*, ProtectionDomain*> pds_;
  sim::Simulation sim;
  Network net;
  sim::Node* client_node = nullptr;
  sim::Node* server_node = nullptr;
  Device* client_dev = nullptr;
  Device* server_dev = nullptr;
  QueuePair* client_qp = nullptr;
  QueuePair* server_qp = nullptr;
  bool server_ready = false;
  std::function<void(QueuePair&)> server_fn_;
};

// --------------------------------------------------------- registration --
TEST_F(VerbsFixture, RegisterAndLookupMemory) {
  std::vector<std::byte> buf(4096);
  ProtectionDomain& pd = client_dev->CreatePd();
  auto mr = pd.RegisterMemory(buf.data(), buf.size(),
                              kLocalWrite | kRemoteRead | kRemoteWrite);
  ASSERT_TRUE(mr.ok());
  EXPECT_NE((*mr)->lkey(), (*mr)->rkey());
  EXPECT_EQ(client_dev->FindMrByRkey((*mr)->rkey()), *mr);
  EXPECT_EQ(client_dev->FindMrByLkey((*mr)->lkey()), *mr);
  EXPECT_TRUE((*mr)->Covers((*mr)->remote_addr(), 4096));
  EXPECT_TRUE((*mr)->Covers((*mr)->remote_addr() + 4095, 1));
  EXPECT_FALSE((*mr)->Covers((*mr)->remote_addr() + 4096, 1));
  EXPECT_FALSE((*mr)->Covers((*mr)->remote_addr(), 4097));
  EXPECT_FALSE((*mr)->Covers((*mr)->remote_addr() - 1, 1));
}

TEST_F(VerbsFixture, RegisterRejectsEmpty) {
  ProtectionDomain& pd = client_dev->CreatePd();
  EXPECT_EQ(pd.RegisterMemory(nullptr, 100, 0).code(),
            ErrorCode::kInvalidArgument);
  std::byte b;
  EXPECT_EQ(pd.RegisterMemory(&b, 0, 0).code(), ErrorCode::kInvalidArgument);
}

TEST_F(VerbsFixture, DeregisterRemovesKeys) {
  std::vector<std::byte> buf(64);
  ProtectionDomain& pd = client_dev->CreatePd();
  MemoryRegion* mr =
      *pd.RegisterMemory(buf.data(), buf.size(), kRemoteRead);
  const uint32_t rkey = mr->rkey();
  EXPECT_TRUE(pd.DeregisterMemory(mr).ok());
  EXPECT_EQ(client_dev->FindMrByRkey(rkey), nullptr);
  EXPECT_EQ(pd.DeregisterMemory(mr).code(), ErrorCode::kNotFound);
}

// --------------------------------------------------------------- connect --
TEST_F(VerbsFixture, ConnectEstablishesRtsPair) {
  RunPair([this](QueuePair& qp) {
    EXPECT_EQ(qp.state(), QueuePair::State::kRts);
    EXPECT_EQ(qp.peer_node(), server_node->id());
  });
  ASSERT_NE(server_qp, nullptr);
  EXPECT_EQ(server_qp->state(), QueuePair::State::kRts);
  EXPECT_EQ(server_qp->peer_node(), client_node->id());
  EXPECT_EQ(server_qp->peer_qp_num(), client_qp->qp_num());
}

TEST_F(VerbsFixture, ConnectToNonListeningServiceFails) {
  bool done = false;
  client_node->Spawn("client", [&] {
    auto qp = net.Connect(*client_dev, server_node->id(), 999);
    EXPECT_FALSE(qp.ok());
    EXPECT_EQ(qp.code(), ErrorCode::kUnavailable);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(VerbsFixture, ConnectToDeadNodeFails) {
  sim.KillNode(server_node->id());
  bool done = false;
  client_node->Spawn("client", [&] {
    auto qp = net.Connect(*client_dev, server_node->id(), kService);
    EXPECT_FALSE(qp.ok());
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(VerbsFixture, AcceptTimesOutWithoutClient) {
  net.Listen(*server_dev, kService);
  bool done = false;
  server_node->Spawn("server", [&] {
    auto qp = net.Listen(*server_dev, kService).Accept(Millis(1));
    EXPECT_EQ(qp.code(), ErrorCode::kTimedOut);
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(VerbsFixture, ConnectionSetupIsControlPathExpensive) {
  // The separation argument: connect costs dwarf a small IO. Measure one
  // connect from inside the simulation.
  Nanos connect_time = 0;
  RunPair([&](QueuePair&) {});
  // RunPair already connected; redo with timing.
  sim::Simulation sim2;
  Network net2(sim2);
  auto& c = sim2.AddNode("c");
  auto& s = sim2.AddNode("s");
  auto& cd = net2.AddDevice(c);
  auto& sd = net2.AddDevice(s);
  net2.Listen(sd, 1);
  s.Spawn("srv", [&] { (void)net2.Listen(sd, 1).Accept(); });
  c.Spawn("cli", [&] {
    const Nanos t0 = sim::Now();
    auto qp = net2.Connect(cd, s.id(), 1);
    ASSERT_TRUE(qp.ok());
    connect_time = sim::Now() - t0;
  });
  sim2.Run();
  // >= 2 QP programming costs + 1.5 RTT of CM messages.
  EXPECT_GT(connect_time, 2 * net2.qp_setup_cost());
  EXPECT_GT(connect_time, Micros(80));
}

// ------------------------------------------------------------ send/recv --
TEST_F(VerbsFixture, SendRecvMovesBytesAndImmediate) {
  std::vector<std::byte> src, dst;
  RunPair(
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(client_dev, src, 256, kLocalWrite);
        std::memset(src.data(), 0xAB, src.size());
        ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                       .opcode = Opcode::kSend,
                                       .local = {src.data(), 256, mr->lkey()},
                                       .imm = 0xFEEDu})
                        .ok());
        auto wc = qp.send_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_EQ(wc->wr_id, 1u);
        EXPECT_TRUE(wc->ok());
      },
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(server_dev, dst, 512, kLocalWrite);
        ASSERT_TRUE(
            qp.PostRecv(RecvWr{.wr_id = 2, .local = {dst.data(), 512,
                                                     mr->lkey()}})
                .ok());
        auto wc = qp.recv_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_EQ(wc->wr_id, 2u);
        EXPECT_EQ(wc->byte_len, 256u);
        ASSERT_TRUE(wc->imm.has_value());
        EXPECT_EQ(*wc->imm, 0xFEEDu);
        EXPECT_EQ(wc->src_node, client_node->id());
        EXPECT_EQ(std::to_integer<int>(dst[0]), 0xAB);
        EXPECT_EQ(std::to_integer<int>(dst[255]), 0xAB);
      });
}

TEST_F(VerbsFixture, SendBeforeRecvParksInRnrBufferThenDelivers) {
  std::vector<std::byte> src, dst;
  RunPair(
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
        ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                       .opcode = Opcode::kSend,
                                       .local = {src.data(), 64, mr->lkey()}})
                        .ok());
        auto wc = qp.send_cq().WaitOne();
        EXPECT_TRUE(wc.ok() && wc->ok());
      },
      [&](QueuePair& qp) {
        // Post the receive well after the send arrived.
        sim::Sleep(Millis(5));
        MemoryRegion* mr = Register(server_dev, dst, 64, kLocalWrite);
        ASSERT_TRUE(
            qp.PostRecv(RecvWr{.wr_id = 9, .local = {dst.data(), 64,
                                                     mr->lkey()}})
                .ok());
        auto wc = qp.recv_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_TRUE(wc->ok());
        EXPECT_EQ(wc->byte_len, 64u);
      });
}

TEST_F(VerbsFixture, RecvBufferTooSmallErrorsBothSides) {
  std::vector<std::byte> src, dst;
  RunPair(
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(client_dev, src, 128, kLocalWrite);
        ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                       .opcode = Opcode::kSend,
                                       .local = {src.data(), 128, mr->lkey()}})
                        .ok());
        auto wc = qp.send_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_EQ(wc->status, WcStatus::kRemOpErr);
      },
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(server_dev, dst, 32, kLocalWrite);
        ASSERT_TRUE(
            qp.PostRecv(RecvWr{.wr_id = 2, .local = {dst.data(), 32,
                                                     mr->lkey()}})
                .ok());
        auto wc = qp.recv_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_EQ(wc->status, WcStatus::kLocalProtErr);
      });
}

// ------------------------------------------------------------ rdma write --
TEST_F(VerbsFixture, RdmaWritePlacesBytesWithoutServerCpu) {
  std::vector<std::byte> src, dst;
  MemoryRegion* dst_mr = Register(server_dev, dst, 4096,
                                  kLocalWrite | kRemoteWrite | kRemoteRead);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* src_mr = Register(client_dev, src, 4096, kLocalWrite);
    for (size_t i = 0; i < src.size(); ++i) src[i] = std::byte(i & 0xFF);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 3,
                           .opcode = Opcode::kRdmaWrite,
                           .local = {src.data(), 4096, src_mr->lkey()},
                           .remote_addr = dst_mr->remote_addr() + 0,
                           .rkey = dst_mr->rkey()})
            .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_TRUE(wc->ok());
    EXPECT_EQ(wc->byte_len, 4096u);
  });
  // Server thread did nothing after accept; data must still be there.
  EXPECT_TRUE(std::memcmp(src.data(), dst.data(), 4096) == 0);
}

TEST_F(VerbsFixture, RdmaWriteAtOffset) {
  std::vector<std::byte> src, dst;
  MemoryRegion* dst_mr =
      Register(server_dev, dst, 1024, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* src_mr = Register(client_dev, src, 16, kLocalWrite);
    std::memset(src.data(), 0x5A, 16);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kRdmaWrite,
                           .local = {src.data(), 16, src_mr->lkey()},
                           .remote_addr = dst_mr->remote_addr() + 100,
                           .rkey = dst_mr->rkey()})
            .ok());
    EXPECT_TRUE(qp.send_cq().WaitOne()->ok());
  });
  EXPECT_EQ(std::to_integer<int>(dst[99]), 0);
  EXPECT_EQ(std::to_integer<int>(dst[100]), 0x5A);
  EXPECT_EQ(std::to_integer<int>(dst[115]), 0x5A);
  EXPECT_EQ(std::to_integer<int>(dst[116]), 0);
}

TEST_F(VerbsFixture, RdmaWriteWithImmConsumesRecvAndCarriesImm) {
  std::vector<std::byte> src, dst, rbuf;
  MemoryRegion* dst_mr =
      Register(server_dev, dst, 64, kLocalWrite | kRemoteWrite);
  RunPair(
      [&](QueuePair& qp) {
        MemoryRegion* src_mr = Register(client_dev, src, 64, kLocalWrite);
        ASSERT_TRUE(
            qp.PostSend(SendWr{.wr_id = 1,
                               .opcode = Opcode::kRdmaWriteWithImm,
                               .local = {src.data(), 64, src_mr->lkey()},
                               .remote_addr = dst_mr->remote_addr(),
                               .rkey = dst_mr->rkey(),
                               .imm = 42u})
                .ok());
        EXPECT_TRUE(qp.send_cq().WaitOne()->ok());
      },
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(server_dev, rbuf, 8, kLocalWrite);
        ASSERT_TRUE(
            qp.PostRecv(RecvWr{.wr_id = 7, .local = {rbuf.data(), 8,
                                                     mr->lkey()}})
                .ok());
        auto wc = qp.recv_cq().WaitOne();
        ASSERT_TRUE(wc.ok());
        EXPECT_TRUE(wc->ok());
        EXPECT_EQ(wc->opcode, Opcode::kRdmaWriteWithImm);
        ASSERT_TRUE(wc->imm.has_value());
        EXPECT_EQ(*wc->imm, 42u);
        EXPECT_EQ(wc->byte_len, 64u);
      });
}

TEST_F(VerbsFixture, RdmaWriteBadRkeyErrorsAndKillsQp) {
  std::vector<std::byte> src;
  RunPair([&](QueuePair& qp) {
    MemoryRegion* src_mr = Register(client_dev, src, 16, kLocalWrite);
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 16, src_mr->lkey()},
                                   .remote_addr = 0xDEAD000,
                                   .rkey = 0xBEEF})
                    .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_EQ(wc->status, WcStatus::kRemAccessErr);
    EXPECT_EQ(qp.state(), QueuePair::State::kError);
    // Subsequent posts are refused.
    EXPECT_EQ(qp.PostSend(SendWr{.wr_id = 2,
                                 .opcode = Opcode::kRdmaWrite,
                                 .local = {src.data(), 16, src_mr->lkey()}})
                  .code(),
              ErrorCode::kUnavailable);
  });
}

TEST_F(VerbsFixture, RdmaWriteOutOfBoundsErrors) {
  std::vector<std::byte> src, dst;
  MemoryRegion* dst_mr =
      Register(server_dev, dst, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* src_mr = Register(client_dev, src, 128, kLocalWrite);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kRdmaWrite,
                           .local = {src.data(), 128, src_mr->lkey()},
                           .remote_addr = dst_mr->remote_addr(),  // 128 > 64
                           .rkey = dst_mr->rkey()})
            .ok());
    EXPECT_EQ(qp.send_cq().WaitOne()->status, WcStatus::kRemAccessErr);
  });
}

TEST_F(VerbsFixture, RdmaWriteWithoutRemoteWriteAccessErrors) {
  std::vector<std::byte> src, dst;
  MemoryRegion* dst_mr =
      Register(server_dev, dst, 64, kLocalWrite | kRemoteRead);  // no write
  RunPair([&](QueuePair& qp) {
    MemoryRegion* src_mr = Register(client_dev, src, 16, kLocalWrite);
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 16, src_mr->lkey()},
                                   .remote_addr = dst_mr->remote_addr(),
                                   .rkey = dst_mr->rkey()})
                    .ok());
    EXPECT_EQ(qp.send_cq().WaitOne()->status, WcStatus::kRemAccessErr);
  });
}

// ------------------------------------------------------------- rdma read --
TEST_F(VerbsFixture, RdmaReadFetchesRemoteBytes) {
  std::vector<std::byte> dst, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 4096, kLocalWrite | kRemoteRead);
  for (size_t i = 0; i < remote.size(); ++i) remote[i] = std::byte(i % 251);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* dst_mr = Register(client_dev, dst, 4096, kLocalWrite);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 4,
                           .opcode = Opcode::kRdmaRead,
                           .local = {dst.data(), 4096, dst_mr->lkey()},
                           .remote_addr = rem_mr->remote_addr(),
                           .rkey = rem_mr->rkey()})
            .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_TRUE(wc->ok());
    EXPECT_EQ(wc->byte_len, 4096u);
    EXPECT_TRUE(std::memcmp(dst.data(), remote.data(), 4096) == 0);
  });
}

TEST_F(VerbsFixture, RdmaReadWithoutRemoteReadAccessErrors) {
  std::vector<std::byte> dst, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* dst_mr = Register(client_dev, dst, 64, kLocalWrite);
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaRead,
                                   .local = {dst.data(), 64, dst_mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = rem_mr->rkey()})
                    .ok());
    EXPECT_EQ(qp.send_cq().WaitOne()->status, WcStatus::kRemAccessErr);
  });
}

TEST_F(VerbsFixture, RdmaReadLatencyIsOneRoundTripPlusPayload) {
  std::vector<std::byte> dst, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 1 << 20, kLocalWrite | kRemoteRead);
  Nanos latency = 0;
  RunPair([&](QueuePair& qp) {
    MemoryRegion* dst_mr = Register(client_dev, dst, 1 << 20, kLocalWrite);
    const Nanos t0 = sim::Now();
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kRdmaRead,
                           .local = {dst.data(), 1 << 20, dst_mr->lkey()},
                           .remote_addr = rem_mr->remote_addr(),
                           .rkey = rem_mr->rkey()})
            .ok());
    ASSERT_TRUE(qp.send_cq().WaitOne()->ok());
    latency = sim::Now() - t0;
  });
  const auto& nic = net.fabric().config();
  const Nanos expected = net.cpu_model().verbs_post_ns +
                         2 * nic.base_latency +
                         sim::TransferTime((1 << 20), nic.bandwidth_bps);
  EXPECT_NEAR(static_cast<double>(latency), static_cast<double>(expected),
              static_cast<double>(expected) * 0.05);
}

// --------------------------------------------------------------- atomics --
TEST_F(VerbsFixture, FetchAddAccumulatesAtomically) {
  std::vector<std::byte> result, remote;
  MemoryRegion* rem_mr = Register(server_dev, remote, 8,
                                  kLocalWrite | kRemoteAtomic | kRemoteRead);
  uint64_t init = 100;
  std::memcpy(remote.data(), &init, 8);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* res_mr = Register(client_dev, result, 8, kLocalWrite);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          qp.PostSend(SendWr{.wr_id = static_cast<uint64_t>(i),
                             .opcode = Opcode::kFetchAdd,
                             .local = {result.data(), 8, res_mr->lkey()},
                             .remote_addr = rem_mr->remote_addr(),
                             .rkey = rem_mr->rkey(),
                             .swap_or_add = 10})
              .ok());
      auto wc = qp.send_cq().WaitOne();
      ASSERT_TRUE(wc.ok() && wc->ok());
      uint64_t old = 0;
      std::memcpy(&old, result.data(), 8);
      EXPECT_EQ(old, 100u + 10u * static_cast<uint64_t>(i));
    }
  });
  uint64_t final_val = 0;
  std::memcpy(&final_val, remote.data(), 8);
  EXPECT_EQ(final_val, 130u);
}

TEST_F(VerbsFixture, CompareSwapOnlySwapsOnMatch) {
  std::vector<std::byte> result, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 8, kLocalWrite | kRemoteAtomic);
  uint64_t init = 7;
  std::memcpy(remote.data(), &init, 8);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* res_mr = Register(client_dev, result, 8, kLocalWrite);
    auto cas = [&](uint64_t compare, uint64_t swap) {
      EXPECT_TRUE(
          qp.PostSend(SendWr{.wr_id = 1,
                             .opcode = Opcode::kCompareSwap,
                             .local = {result.data(), 8, res_mr->lkey()},
                             .remote_addr = rem_mr->remote_addr(),
                             .rkey = rem_mr->rkey(),
                             .compare = compare,
                             .swap_or_add = swap})
              .ok());
      EXPECT_TRUE(qp.send_cq().WaitOne()->ok());
      uint64_t old = 0;
      std::memcpy(&old, result.data(), 8);
      return old;
    };
    EXPECT_EQ(cas(99, 1), 7u);  // mismatch: returns old, no swap
    EXPECT_EQ(cas(7, 42), 7u);  // match: swaps
    EXPECT_EQ(cas(42, 0), 42u);
  });
}

TEST_F(VerbsFixture, MisalignedAtomicErrors) {
  std::vector<std::byte> result, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 16, kLocalWrite | kRemoteAtomic);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* res_mr = Register(client_dev, result, 8, kLocalWrite);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kFetchAdd,
                           .local = {result.data(), 8, res_mr->lkey()},
                           .remote_addr = rem_mr->remote_addr() + 3,
                           .rkey = rem_mr->rkey(),
                           .swap_or_add = 1})
            .ok());
    EXPECT_EQ(qp.send_cq().WaitOne()->status, WcStatus::kRemOpErr);
  });
}

// ------------------------------------------------------- local validation --
TEST_F(VerbsFixture, PostSendRejectsBadLkey) {
  std::vector<std::byte> src(64);
  RunPair([&](QueuePair& qp) {
    EXPECT_EQ(qp.PostSend(SendWr{.wr_id = 1,
                                 .opcode = Opcode::kSend,
                                 .local = {src.data(), 64, /*lkey=*/12345}})
                  .code(),
              ErrorCode::kPermissionDenied);
  });
}

TEST_F(VerbsFixture, PostSendRejectsSgeOutsideMr) {
  std::vector<std::byte> src;
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    EXPECT_EQ(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kSend,
                           .local = {src.data() + 32, 64, mr->lkey()}})
            .code(),
        ErrorCode::kOutOfRange);
  });
}

TEST_F(VerbsFixture, PostRecvRequiresLocalWrite) {
  std::vector<std::byte> buf;
  RunPair(
      [&](QueuePair&) {},
      [&](QueuePair& qp) {
        MemoryRegion* mr = Register(server_dev, buf, 64, kRemoteRead);
        EXPECT_EQ(qp.PostRecv(RecvWr{.wr_id = 1,
                                     .local = {buf.data(), 64, mr->lkey()}})
                      .code(),
                  ErrorCode::kPermissionDenied);
      });
}

TEST_F(VerbsFixture, PostToUnconnectedQpFails) {
  QueuePair& qp = client_dev->CreateQueuePair();
  std::vector<std::byte> src(8);
  EXPECT_EQ(qp.PostSend(SendWr{.wr_id = 1,
                               .opcode = Opcode::kSend,
                               .local = {}})
                .code(),
            ErrorCode::kUnavailable);
  (void)src;
}

TEST_F(VerbsFixture, SendQueueDepthIsEnforced) {
  std::vector<std::byte> src;
  RunPair([&](QueuePair&) {
    QpConfig cfg;
    cfg.max_send_wr = 2;
    // Fresh pair with tiny SQ against the same server service.
    auto qp2 = net.Connect(*client_dev, server_node->id(), kService, cfg);
    ASSERT_TRUE(qp2.ok());
    MemoryRegion* mr = Register(client_dev, src, 8, kLocalWrite);
    SendWr wr{.wr_id = 1,
              .opcode = Opcode::kRdmaWrite,
              .local = {src.data(), 8, mr->lkey()},
              .remote_addr = 0,
              .rkey = 0};
    // Bad rkey, but validation order posts them; 3rd must bounce.
    EXPECT_TRUE((*qp2)->PostSend(wr).ok());
    EXPECT_TRUE((*qp2)->PostSend(wr).ok());
    EXPECT_EQ((*qp2)->PostSend(wr).code(), ErrorCode::kOutOfMemory);
  });
}

// ------------------------------------------------- ordering & pipelining --
TEST_F(VerbsFixture, CompletionsArriveInPostOrder) {
  // Mix a large read (slow) with small writes (fast): completions must
  // still pop in post order on the same QP.
  std::vector<std::byte> big, small, remote;
  MemoryRegion* rem_mr = Register(server_dev, remote, 8 << 20,
                                  kLocalWrite | kRemoteRead | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* big_mr = Register(client_dev, big, 8 << 20, kLocalWrite);
    MemoryRegion* small_mr = Register(client_dev, small, 8, kLocalWrite);
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 1,
                           .opcode = Opcode::kRdmaRead,
                           .local = {big.data(), 8 << 20, big_mr->lkey()},
                           .remote_addr = rem_mr->remote_addr(),
                           .rkey = rem_mr->rkey()})
            .ok());
    ASSERT_TRUE(
        qp.PostSend(SendWr{.wr_id = 2,
                           .opcode = Opcode::kRdmaWrite,
                           .local = {small.data(), 8, small_mr->lkey()},
                           .remote_addr = rem_mr->remote_addr(),
                           .rkey = rem_mr->rkey()})
            .ok());
    std::vector<uint64_t> order;
    while (order.size() < 2) {
      for (const auto& wc : qp.send_cq().WaitPoll()) {
        EXPECT_TRUE(wc.ok());
        order.push_back(wc.wr_id);
      }
    }
    EXPECT_EQ(order, (std::vector<uint64_t>{1, 2}));
  });
}

TEST_F(VerbsFixture, UnsignaledSuccessProducesNoCompletion) {
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 64, mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = rem_mr->rkey(),
                                   .signaled = false})
                    .ok());
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 2,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 64, mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = rem_mr->rkey(),
                                   .signaled = true})
                    .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_EQ(wc->wr_id, 2u);  // wr 1 completed silently
    EXPECT_EQ(qp.send_cq().pending(), 0u);
  });
}

TEST_F(VerbsFixture, PipelinedWritesSaturateBandwidth) {
  // 32 x 1 MiB writes: total time ≈ latency + 32 * wire, demonstrating
  // the QP does not stall-and-wait between WRs.
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr = Register(server_dev, remote, 1 << 20,
                                  kLocalWrite | kRemoteWrite);
  Nanos elapsed = 0;
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 1 << 20, kLocalWrite);
    const Nanos t0 = sim::Now();
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(
          qp.PostSend(SendWr{.wr_id = static_cast<uint64_t>(i),
                             .opcode = Opcode::kRdmaWrite,
                             .local = {src.data(), 1 << 20, mr->lkey()},
                             .remote_addr = rem_mr->remote_addr(),
                             .rkey = rem_mr->rkey(),
                             .signaled = (i == 31)})
              .ok());
    }
    ASSERT_TRUE(qp.send_cq().WaitOne()->ok());
    elapsed = sim::Now() - t0;
  });
  const double gbps =
      static_cast<double>(32ULL << 20) * 8.0 / sim::ToSeconds(elapsed);
  EXPECT_GT(gbps, 0.9 * net.fabric().config().bandwidth_bps);
}

// ------------------------------------------------------ failure handling --
TEST_F(VerbsFixture, WriteToKilledPeerRetriesThenErrors) {
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    sim::CurrentNode().sim().KillNode(server_node->id());
    sim::Sleep(Micros(10));  // let the kill land
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 64, mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = rem_mr->rkey()})
                    .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_EQ(wc->status, WcStatus::kRetryExceeded);
    EXPECT_EQ(qp.state(), QueuePair::State::kError);
  });
}

TEST_F(VerbsFixture, ErrorFlushesQueuedWork) {
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    // First WR has a bad rkey and errors; three good WRs behind it flush.
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 64, mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = 0xBAD})
                    .ok());
    for (uint64_t id = 2; id <= 4; ++id) {
      ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = id,
                                     .opcode = Opcode::kRdmaWrite,
                                     .local = {src.data(), 64, mr->lkey()},
                                     .remote_addr = rem_mr->remote_addr(),
                                     .rkey = rem_mr->rkey()})
                      .ok());
    }
    std::vector<WcStatus> statuses;
    while (statuses.size() < 4) {
      for (const auto& wc : qp.send_cq().WaitPoll()) {
        statuses.push_back(wc.status);
      }
    }
    EXPECT_EQ(statuses[0], WcStatus::kRemAccessErr);
    for (size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(statuses[i], WcStatus::kWrFlushErr);
    }
  });
}

TEST_F(VerbsFixture, PartitionedLinkErrorsInFlightWork) {
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  RunPair([&](QueuePair& qp) {
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    net.fabric().SetLinkDown(client_node->id(), server_node->id(), true);
    ASSERT_TRUE(qp.PostSend(SendWr{.wr_id = 1,
                                   .opcode = Opcode::kRdmaWrite,
                                   .local = {src.data(), 64, mr->lkey()},
                                   .remote_addr = rem_mr->remote_addr(),
                                   .rkey = rem_mr->rkey()})
                    .ok());
    auto wc = qp.send_cq().WaitOne();
    ASSERT_TRUE(wc.ok());
    EXPECT_EQ(wc->status, WcStatus::kRetryExceeded);
  });
}

// ---------------------------------------------------------------- CQs ----
TEST_F(VerbsFixture, SharedCqCollectsMultipleQps) {
  // Two client QPs share one send CQ; completions from both arrive on it.
  std::vector<std::byte> src, remote;
  MemoryRegion* rem_mr =
      Register(server_dev, remote, 64, kLocalWrite | kRemoteWrite);
  net.Listen(*server_dev, kService);
  server_node->Spawn("server", [this] {
    (void)net.Listen(*server_dev, kService).Accept();
    (void)net.Listen(*server_dev, kService).Accept();
  });
  bool done = false;
  client_node->Spawn("client", [&] {
    CompletionQueue& cq = client_dev->CreateCq();
    auto qp1 = net.Connect(*client_dev, server_node->id(), kService, {}, &cq);
    auto qp2 = net.Connect(*client_dev, server_node->id(), kService, {}, &cq);
    ASSERT_TRUE(qp1.ok() && qp2.ok());
    MemoryRegion* mr = Register(client_dev, src, 64, kLocalWrite);
    SendWr wr{.wr_id = 0,
              .opcode = Opcode::kRdmaWrite,
              .local = {src.data(), 64, mr->lkey()},
              .remote_addr = rem_mr->remote_addr(),
              .rkey = rem_mr->rkey()};
    wr.wr_id = 11;
    ASSERT_TRUE((*qp1)->PostSend(wr).ok());
    wr.wr_id = 22;
    ASSERT_TRUE((*qp2)->PostSend(wr).ok());
    std::vector<uint64_t> ids;
    while (ids.size() < 2) {
      for (const auto& wc : cq.WaitPoll()) {
        EXPECT_TRUE(wc.ok());
        ids.push_back(wc.wr_id);
      }
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<uint64_t>{11, 22}));
    done = true;
  });
  sim.Run();
  EXPECT_TRUE(done);
}

TEST_F(VerbsFixture, WaitOneTimesOutOnSilence) {
  RunPair([&](QueuePair& qp) {
    auto wc = qp.send_cq().WaitOne(Millis(2));
    EXPECT_EQ(wc.code(), ErrorCode::kTimedOut);
  });
}

}  // namespace
}  // namespace rstore::verbs
