// rcheck_report: pretty-prints rcheck violation dumps (the JSON files the
// checker writes on shutdown, see RSTORE_RCHECK_OUT). Accepts any number
// of report files, prints each violation with both endpoints, and exits 1
// when any file contains a violation — CI feeds it the artifact directory
// so a red gate also shows the human-readable reports inline.
//
//   rcheck_report report.json [report2.json ...]
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace_check.h"

namespace {

using rstore::obs::JsonValue;

uint64_t Num(const JsonValue* v) {
  return v != nullptr ? static_cast<uint64_t>(v->number) : 0;
}

std::string Str(const JsonValue* v) {
  return v != nullptr ? v->str : std::string();
}

void PrintEndpoint(const char* tag, const JsonValue& e) {
  const bool remote =
      e.Find("remote") != nullptr && e.Find("remote")->boolean;
  const bool pending =
      e.Find("pending") != nullptr && e.Find("pending")->boolean;
  std::printf("    %s: node %llu %s %s [%llu, %llu) at t=%lluns", tag,
              static_cast<unsigned long long>(Num(e.Find("node"))),
              remote ? "remote" : "local", Str(e.Find("kind")).c_str(),
              static_cast<unsigned long long>(Num(e.Find("lo"))),
              static_cast<unsigned long long>(Num(e.Find("hi"))),
              static_cast<unsigned long long>(Num(e.Find("vtime"))));
  const std::string label = Str(e.Find("label"));
  if (!label.empty()) std::printf(" in %s", label.c_str());
  if (pending) std::printf(" (completion never observed)");
  std::printf("\n");
}

// Returns the number of violations in the file, or -1 on parse failure.
int PrintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rcheck_report: cannot open %s\n", path.c_str());
    return -1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto root = rstore::obs::ParseJson(text.str());
  if (!root.ok()) {
    std::fprintf(stderr, "rcheck_report: %s: %s\n", path.c_str(),
                 root.status().message().c_str());
    return -1;
  }
  const JsonValue* violations = root->Find("violations");
  if (violations == nullptr ||
      violations->type != JsonValue::Type::kArray) {
    std::fprintf(stderr, "rcheck_report: %s: no \"violations\" array\n",
                 path.c_str());
    return -1;
  }

  std::printf("%s: %zu violation(s)\n", path.c_str(),
              violations->array.size());
  int index = 0;
  for (const JsonValue& v : violations->array) {
    std::printf("  #%d %s on node %llu", ++index,
                Str(v.Find("type")).c_str(),
                static_cast<unsigned long long>(Num(v.Find("target_node"))));
    const std::string region = Str(v.Find("region"));
    if (!region.empty()) {
      std::printf(" region \"%s\" bytes [%llu, %llu)", region.c_str(),
                  static_cast<unsigned long long>(Num(v.Find("region_lo"))),
                  static_cast<unsigned long long>(Num(v.Find("region_hi"))));
    }
    std::printf("\n");
    const JsonValue* a = v.Find("a");
    const JsonValue* b = v.Find("b");
    if (a != nullptr) PrintEndpoint("A", *a);
    if (b != nullptr) PrintEndpoint("B", *b);
    const std::string detail = Str(v.Find("detail"));
    if (!detail.empty()) std::printf("    %s\n", detail.c_str());
  }
  return static_cast<int>(violations->array.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rcheck_report <report.json>...\n");
    return 1;
  }
  long total = 0;
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    const int n = PrintFile(argv[i]);
    if (n < 0) {
      failed = true;
    } else {
      total += n;
    }
  }
  std::printf("rcheck_report: %ld violation(s) across %d file(s)\n", total,
              argc - 1);
  return (failed || total > 0) ? 1 : 0;
}
