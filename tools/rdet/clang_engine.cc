// Clang AST-matcher engine for rdet. Compiled only when Clang dev headers
// are available (see tools/rdet/CMakeLists.txt); the CI rdet job builds it
// against the pinned distro LLVM. Where the token engine approximates
// container types with a cross-file declaration table, this engine
// resolves them through the AST, sees through typedefs/auto, and matches
// through macro expansions. Findings are reported raw; the shared
// pipeline in rdet_core.cc applies scopes, inline suppressions, and the
// allowlist so both engines have identical suppression semantics.
//
// API surface is kept to what is stable across LLVM 14..18:
// CommonOptionsParser-free ClangTool construction, MatchFinder, and
// ArgumentsAdjusters.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/Diagnostic.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/raw_ostream.h"

#include "rdet.h"

namespace rdet {
namespace {

using namespace clang;              // NOLINT
using namespace clang::ast_matchers;  // NOLINT

struct CheckSpec {
  Check check;
  std::string message;
  std::string note;
};

class Collector : public MatchFinder::MatchCallback {
 public:
  explicit Collector(std::vector<Finding>& out) : out_(out) {}

  void Register(const std::string& bind_id, CheckSpec spec) {
    specs_[bind_id] = std::move(spec);
  }

  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    for (const auto& [id, spec] : specs_) {
      SourceLocation loc;
      if (const auto* stmt = result.Nodes.getNodeAs<Stmt>(id)) {
        loc = stmt->getBeginLoc();
      } else if (const auto* decl = result.Nodes.getNodeAs<Decl>(id)) {
        loc = decl->getBeginLoc();
      } else if (const auto* tl = result.Nodes.getNodeAs<TypeLoc>(id)) {
        loc = tl->getBeginLoc();
      } else {
        continue;
      }
      if (loc.isInvalid()) continue;
      const SourceLocation expansion = sm.getExpansionLoc(loc);
      if (sm.isInSystemHeader(expansion)) continue;
      const FileEntry* fe =
          sm.getFileEntryForID(sm.getFileID(expansion));
      if (fe == nullptr) continue;
      Finding fd;
      fd.check = spec.check;
      llvm::StringRef real = fe->tryGetRealPathName();
      fd.file = real.empty() ? std::string(fe->getName()) : real.str();
      fd.line = static_cast<int>(sm.getExpansionLineNumber(expansion));
      fd.col = static_cast<int>(sm.getExpansionColumnNumber(expansion));
      fd.message = spec.message;
      if (!spec.note.empty()) fd.notes.push_back(spec.note);
      out_.push_back(std::move(fd));
    }
  }

 private:
  std::vector<Finding>& out_;
  std::map<std::string, CheckSpec> specs_;
};

void AddMatchers(MatchFinder& finder, Collector& cb,
                 const Options& opts) {
  const auto enabled = [&](Check c) {
    return opts.enabled[static_cast<size_t>(c)];
  };

  // --- rdet-wallclock ------------------------------------------------------
  if (enabled(Check::kWallclock)) {
    cb.Register("wallclock",
                {Check::kWallclock,
                 "wall-clock time source — host time is nondeterministic "
                 "across runs and hosts",
                 "use the simulation's virtual clock (sim::Simulation::Now) "
                 "for anything sim-visible; annotate host-side measurement "
                 "harnesses with // NOLINT(rdet-wallclock) and a rationale"});
    const auto clock_class = cxxRecordDecl(
        hasAnyName("::std::chrono::system_clock", "::std::chrono::steady_clock",
                   "::std::chrono::high_resolution_clock"));
    finder.addMatcher(
        callExpr(callee(cxxMethodDecl(hasName("now"), ofClass(clock_class))),
                 unless(isExpansionInSystemHeader()))
            .bind("wallclock"),
        &cb);
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::gettimeofday", "::clock_gettime", "::time",
                     "::timespec_get", "::ftime", "::localtime", "::gmtime",
                     "::mktime", "__rdtsc", "__rdtscp",
                     "__builtin_readcyclecounter", "__builtin_ia32_rdtsc"))),
                 unless(isExpansionInSystemHeader()))
            .bind("wallclock"),
        &cb);
    finder.addMatcher(
        typeLoc(loc(qualType(hasDeclaration(clock_class))),
                unless(isExpansionInSystemHeader()))
            .bind("wallclock"),
        &cb);
  }

  // --- rdet-unseeded-random ------------------------------------------------
  if (enabled(Check::kUnseededRandom)) {
    cb.Register("random",
                {Check::kUnseededRandom,
                 "unseeded randomness source — draws differ on every run",
                 "construct a seeded generator instead (common/rng.h "
                 "Rng(seed), or std::mt19937 with an explicit seed)"});
    finder.addMatcher(
        typeLoc(loc(qualType(hasDeclaration(
                    cxxRecordDecl(hasName("::std::random_device"))))),
                unless(isExpansionInSystemHeader()))
            .bind("random"),
        &cb);
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::rand", "::srand", "::random", "::srandom", "::drand48",
                     "::lrand48", "::mrand48", "::arc4random",
                     "::arc4random_uniform", "::arc4random_buf",
                     "::getentropy", "::getrandom"))),
                 unless(isExpansionInSystemHeader()))
            .bind("random"),
        &cb);
  }

  // --- rdet-unordered-iter -------------------------------------------------
  if (enabled(Check::kUnorderedIter)) {
    cb.Register(
        "uiter",
        {Check::kUnorderedIter,
         "iteration over an unordered container — iteration order is "
         "implementation-defined and leaks into anything it feeds",
         "if every iteration is provably order-independent, annotate the "
         "loop with // rdet:order-independent; otherwise iterate keys in "
         "sorted order or switch to an ordered container"});
    const auto unordered_type = qualType(hasUnqualifiedDesugaredType(
        recordType(hasDeclaration(classTemplateSpecializationDecl(hasAnyName(
            "::std::unordered_map", "::std::unordered_set",
            "::std::unordered_multimap", "::std::unordered_multiset"))))));
    finder.addMatcher(
        cxxForRangeStmt(hasRangeInit(expr(ignoringParenImpCasts(
                            expr(hasType(unordered_type))))),
                        unless(isExpansionInSystemHeader()))
            .bind("uiter"),
        &cb);
    finder.addMatcher(
        forStmt(hasLoopInit(declStmt(hasSingleDecl(varDecl(hasInitializer(
                    ignoringImplicit(cxxMemberCallExpr(
                        callee(cxxMethodDecl(hasAnyName("begin", "cbegin"))),
                        on(expr(hasType(unordered_type)))))))))),
                unless(isExpansionInSystemHeader()))
            .bind("uiter"),
        &cb);
  }

  // --- rdet-ptr-order ------------------------------------------------------
  if (enabled(Check::kPtrOrder)) {
    cb.Register("ptrhash",
                {Check::kPtrOrder,
                 "std::hash over a raw pointer — hashes the address, which "
                 "differs run to run (ASLR) and orders buckets "
                 "nondeterministically",
                 "hash a stable identity (id, name, offset) instead"});
    finder.addMatcher(
        typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                    recordType(hasDeclaration(classTemplateSpecializationDecl(
                        hasName("::std::hash"),
                        hasTemplateArgument(0,
                                            refersToType(pointerType())))))))),
                unless(isExpansionInSystemHeader()))
            .bind("ptrhash"),
        &cb);

    cb.Register("ptrorder",
                {Check::kPtrOrder,
                 "pointer value cast to an integer and fed to an "
                 "ordering/serialization/output sink — addresses differ run "
                 "to run",
                 "derive ordering and output from stable identities (ids, "
                 "region offsets), never from addresses"});
    const auto ptr_to_int = cxxReinterpretCastExpr(
        hasDestinationType(isInteger()),
        hasSourceExpression(hasType(pointerType())));
    finder.addMatcher(
        cxxReinterpretCastExpr(
            ptr_to_int,
            anyOf(hasAncestor(callExpr(callee(functionDecl(hasAnyName(
                      "sort", "stable_sort", "nth_element", "partial_sort",
                      "min_element", "max_element", "lower_bound",
                      "upper_bound", "binary_search", "Append", "AppendJson",
                      "arg", "Arg", "AddArg", "Note", "Trace", "Span",
                      "Record", "Emit", "Print", "printf", "fprintf",
                      "snprintf", "sprintf", "Serialize", "Encode", "Str",
                      "U32", "U64", "Hash", "hash", "Mix", "Combine",
                      "Key"))))),
                  hasParent(binaryOperator(anyOf(
                      hasOperatorName("<"), hasOperatorName(">"),
                      hasOperatorName("<="), hasOperatorName(">="),
                      hasOperatorName("<<"))))),
            unless(isExpansionInSystemHeader()))
            .bind("ptrorder"),
        &cb);
  }

  // --- rdet-ptr-key --------------------------------------------------------
  if (enabled(Check::kPtrKey)) {
    cb.Register("ptrkey",
                {Check::kPtrKey,
                 "ordered container keyed by a raw pointer — comparison "
                 "order is the address order, which differs run to run",
                 "key by a stable identity, or use an unordered container "
                 "and never iterate it into sim-visible state"});
    finder.addMatcher(
        typeLoc(loc(qualType(hasUnqualifiedDesugaredType(
                    recordType(hasDeclaration(classTemplateSpecializationDecl(
                        hasAnyName("::std::map", "::std::set",
                                   "::std::multimap", "::std::multiset"),
                        hasTemplateArgument(0,
                                            refersToType(pointerType())))))))),
                unless(isExpansionInSystemHeader()))
            .bind("ptrkey"),
        &cb);
  }

  // --- rdet-blocking -------------------------------------------------------
  if (enabled(Check::kBlocking)) {
    cb.Register("blocking",
                {Check::kBlocking,
                 "blocking call / file IO in simulation-reachable code",
                 "simulation callbacks must not block on host time or host "
                 "IO; if this is a report-dump or CLI path, add it to "
                 "tools/rdet/rdet-allow.txt with a rationale"});
    finder.addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::sleep", "::usleep", "::nanosleep", "::fopen",
                     "::freopen", "::fread", "::fwrite", "::fgets", "::fputs",
                     "::fscanf", "::fclose", "::system", "::popen", "::fork",
                     "::std::this_thread::sleep_for",
                     "::std::this_thread::sleep_until"))),
                 unless(isExpansionInSystemHeader()))
            .bind("blocking"),
        &cb);
    // `std::ifstream` & co are typedefs; desugar to the basic_* records.
    finder.addMatcher(
        typeLoc(loc(qualType(hasUnqualifiedDesugaredType(recordType(
                    hasDeclaration(classTemplateSpecializationDecl(hasAnyName(
                        "::std::basic_ifstream", "::std::basic_ofstream",
                        "::std::basic_fstream"))))))),
                unless(isExpansionInSystemHeader()))
            .bind("blocking"),
        &cb);
  }
}

}  // namespace

bool ClangEngineAvailable() { return true; }

bool RunClangEngine(const Options& opts, const std::vector<std::string>& tus,
                    std::vector<Finding>& out, std::string& error) {
  std::unique_ptr<tooling::CompilationDatabase> db;
  if (!opts.compile_commands_dir.empty()) {
    std::string load_error;
    db = tooling::CompilationDatabase::autoDetectFromDirectory(
        opts.compile_commands_dir, load_error);
    if (!db) {
      error = "cannot load compile_commands.json from " +
              opts.compile_commands_dir + ": " + load_error;
      return false;
    }
  } else {
    // Self-contained sources (fixture mode): a fixed command line.
    db = std::make_unique<tooling::FixedCompilationDatabase>(
        ".", std::vector<std::string>{"-std=c++20"});
  }

  tooling::ClangTool tool(*db, tus);
#ifdef RDET_CLANG_RESOURCE_DIR
  tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster(
      {"-resource-dir", RDET_CLANG_RESOURCE_DIR},
      tooling::ArgumentInsertPosition::END));
#endif
  // The engine only needs the AST; compiler warnings are clang-vs-gcc
  // noise here (the real builds keep -Wall -Wextra).
  tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster(
      "-Wno-everything", tooling::ArgumentInsertPosition::END));
  IgnoringDiagConsumer quiet;
  tool.setDiagnosticConsumer(&quiet);

  Collector cb(out);
  MatchFinder finder;
  AddMatchers(finder, cb, opts);
  const int rc =
      tool.run(tooling::newFrontendActionFactory(&finder).get());
  // rc==1 means some TU failed to parse completely; matches from the
  // parts that did parse were still collected. Only a hard tool failure
  // (no compilation database entries at all) is fatal.
  (void)rc;
  return true;
}

}  // namespace rdet
