// Stub compiled when Clang dev headers are unavailable at configure time
// (see tools/rdet/CMakeLists.txt). The token engine is the fallback; the
// CI rdet job builds the real engine against the pinned distro LLVM.
#include "rdet.h"

namespace rdet {

bool ClangEngineAvailable() { return false; }

bool RunClangEngine(const Options& /*opts*/,
                    const std::vector<std::string>& /*tus*/,
                    std::vector<Finding>& /*out*/, std::string& error) {
  error = "rdet was built without Clang dev headers";
  return false;
}

}  // namespace rdet
