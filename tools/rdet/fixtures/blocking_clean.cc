// rdet fixture: negative — simulation-style code: waits are virtual-time
// events, "IO" is in-memory, reports accumulate for the shutdown dump
// (which lives in an allowlisted path, not here).
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace {

struct EventQueue {
  std::vector<std::pair<uint64_t, int>> events;
  void ScheduleAt(uint64_t vt, int ev) { events.emplace_back(vt, ev); }
};

std::string RenderReport(int violations) {
  return "violations=" + std::to_string(violations);
}

}  // namespace

int main() {
  EventQueue q;
  q.ScheduleAt(10, 1);
  return RenderReport(0).empty() ? 1 : 0;
}
