// rdet fixture: rdet-blocking must fire on sleeps and file IO — in the
// simulator's hot path these stall virtual time against the host.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <unistd.h>

namespace {

void NapMicros() {
  usleep(100);  // expect-diag: rdet-blocking
}

void NapChrono() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // expect-diag: rdet-blocking
}

long CountBytes(const char* path) {
  std::ifstream in(path);  // expect-diag: rdet-blocking
  long n = 0;
  while (in.get() != -1) ++n;
  return n;
}

void Dump(const char* path) {
  std::FILE* f = fopen(path, "w");  // expect-diag: rdet-blocking
  if (f != nullptr) {
    fputs("x", f);  // expect-diag: rdet-blocking
    fclose(f);  // expect-diag: rdet-blocking
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    NapMicros();
    NapChrono();
    Dump(argv[1]);
    return CountBytes(argv[1]) > 0 ? 0 : 1;
  }
  return 0;
}
