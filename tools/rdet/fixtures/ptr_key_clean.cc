// rdet fixture: negative — value keys in ordered containers and pointer
// VALUES (not keys) are fine; keying by a stable id is the pattern the
// check pushes people toward.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace {

struct Node {
  int id;
};

struct Tracker {
  std::map<uint64_t, Node*> by_id_;
  std::set<std::string> names_;
};

}  // namespace

int main() {
  Tracker t;
  Node n{1};
  t.by_id_.emplace(1, &n);
  t.names_.insert("n1");
  return static_cast<int>(t.by_id_.size() + t.names_.size()) == 2 ? 0 : 1;
}
