// rdet fixture: rdet-ptr-key must fire on raw-pointer keys in ordered
// containers — the "ordered" iteration order is really allocation order.
#include <map>
#include <set>

namespace {

struct Node {
  int id;
};

struct Tracker {
  std::map<Node*, int> refcounts_;  // expect-diag: rdet-ptr-key
  std::set<const Node*> live_;  // expect-diag: rdet-ptr-key
};

}  // namespace

int main() {
  Tracker t;
  return static_cast<int>(t.refcounts_.size() + t.live_.size());
}
