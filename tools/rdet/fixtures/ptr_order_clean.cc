// rdet fixture: negative — sorting by stable identity is fine, and a
// pointer->integer cast that never reaches ordering or output (address
// bookkeeping against a registered range) is fine.
#include <algorithm>
#include <cstdint>
#include <vector>

namespace {

struct Session {
  int id;
};

void SortById(std::vector<Session*>& sessions) {
  std::sort(sessions.begin(), sessions.end(),
            [](const Session* a, const Session* b) { return a->id < b->id; });
}

bool InRegisteredRange(const Session* s, uintptr_t lo, uintptr_t hi) {
  const auto addr = reinterpret_cast<uintptr_t>(s);
  return addr >= lo && addr < hi;
}

}  // namespace

int main() {
  std::vector<Session*> v;
  SortById(v);
  Session s{1};
  return InRegisteredRange(&s, 0, ~uintptr_t{0}) ? 0 : 1;
}
