// rdet fixture: rdet-ptr-order must fire when pointer values feed
// ordering or hashing — heap layout then decides observable order.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

namespace {

struct Session {
  int id;
};

void SortByAddress(std::vector<Session*>& sessions) {
  std::sort(sessions.begin(), sessions.end(), [](Session* a, Session* b) {
    return reinterpret_cast<uintptr_t>(a) <  // expect-diag: rdet-ptr-order
           reinterpret_cast<uintptr_t>(b);  // expect-diag: rdet-ptr-order
  });
}

std::size_t HashAddress(Session* s) {
  std::hash<Session*> hasher;  // expect-diag: rdet-ptr-order
  return hasher(s);
}

}  // namespace

int main() {
  std::vector<Session*> v;
  SortByAddress(v);
  Session s{1};
  return HashAddress(&s) != 0 ? 0 : 1;
}
