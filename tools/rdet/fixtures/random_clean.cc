// rdet fixture: negative — seeded, reproducible randomness is fine.
#include <cstdint>
#include <random>

namespace {

uint64_t DrawDeterministic(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> dist(0, 99);
  return dist(rng);
}

// Hand-rolled xorshift seeded from config, in the style of common/rng.h.
struct Mixer {
  uint64_t state;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

}  // namespace

int main() {
  Mixer m{42};
  return DrawDeterministic(7) + m.Next() > 0 ? 0 : 1;
}
