// rdet fixture: rdet-unseeded-random must fire on entropy sources that
// are not derived from the run's seed.
#include <cstdlib>
#include <random>

namespace {

unsigned HostEntropySeed() {
  std::random_device rd;  // expect-diag: rdet-unseeded-random
  return rd();
}

int LibcRand() {
  return rand();  // expect-diag: rdet-unseeded-random
}

void SeedLibc(unsigned s) {
  srand(s);  // expect-diag: rdet-unseeded-random
}

}  // namespace

int main() {
  SeedLibc(1);
  return static_cast<int>((HostEntropySeed() + LibcRand()) % 2);
}
