// rdet fixture: negative — ordered containers are quiet, lookups into
// unordered containers are quiet, and a hash-order loop whose body is
// genuinely commutative is suppressible with rdet:order-independent.
#include <map>
#include <unordered_map>
#include <vector>

namespace {

struct Catalog {
  std::map<int, int> ordered_;
  std::unordered_map<int, int> index_;
};

int SumOrdered(const Catalog& c) {
  int acc = 0;
  for (const auto& [k, v] : c.ordered_) acc += k + v;
  return acc;
}

int SumCommutative(const Catalog& c) {
  int acc = 0;
  // Integer sum is commutative, so hash order cannot leak out.
  // rdet:order-independent
  for (const auto& [k, v] : c.index_) acc += k + v;
  return acc;
}

int Lookup(const Catalog& c, int k) {
  auto it = c.index_.find(k);
  return it == c.index_.end() ? 0 : it->second;
}

// The outer container decides iteration order: a vector of unordered
// maps iterates deterministically even though `>>` closes both lists.
int SumRows(const std::vector<std::unordered_map<int, int>>& rows) {
  int n = 0;
  for (const auto& row : rows) n += static_cast<int>(row.size());
  return n;
}

}  // namespace

int main() {
  Catalog c;
  return SumOrdered(c) + SumCommutative(c) + Lookup(c, 1) + SumRows({});
}
