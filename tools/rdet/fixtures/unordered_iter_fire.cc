// rdet fixture: rdet-unordered-iter must fire on loops whose visit order
// depends on hashing (range-for and explicit iterator loops).
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace {

struct Registry {
  std::unordered_map<int, int> by_id_;
  std::unordered_set<std::string> names_;
};

int SumRange(const Registry& r) {
  int acc = 0;
  for (const auto& [id, v] : r.by_id_) {  // expect-diag: rdet-unordered-iter
    acc += id + v;
  }
  return acc;
}

int CountIter(const Registry& r) {
  int n = 0;
  // expect-diag: rdet-unordered-iter
  for (auto it = r.names_.begin(); it != r.names_.end(); ++it) {
    ++n;
  }
  return n;
}

// Nested template arguments close with a single `>>` token; the outer
// container still decides iteration order.
int SumNested() {
  std::unordered_map<int, std::vector<int>> by_key;
  int n = 0;
  for (const auto& [key, vals] : by_key) {  // expect-diag: rdet-unordered-iter
    n += key + static_cast<int>(vals.size());
  }
  return n;
}

}  // namespace

int main() {
  Registry r;
  return SumRange(r) + CountIter(r) + SumNested();
}
