// rdet fixture: negative — virtual-time code is quiet, and host-side
// harness measurement is suppressible with NOLINT / NOLINTNEXTLINE.
#include <chrono>
#include <cstdint>

namespace {

struct VirtualClock {
  uint64_t now_ns = 0;
  uint64_t Now() const { return now_ns; }
  void Advance(uint64_t dt) { now_ns += dt; }
};

uint64_t Elapsed(const VirtualClock& clock) { return clock.Now(); }

double HarnessWallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();  // NOLINT(rdet-wallclock) host-side harness timing
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

double HarnessWallSeconds2() {
  // NOLINTNEXTLINE(rdet-wallclock): host-side harness timing
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}

}  // namespace

int main() {
  VirtualClock c;
  c.Advance(5);
  const bool ok = Elapsed(c) == 5 && HarnessWallSeconds() >= 0.0 &&
                  HarnessWallSeconds2() >= 0.0;
  return ok ? 0 : 1;
}
