// rdet fixture: rdet-wallclock must fire on every wall-clock source.
// Simulation code must take time from the virtual clock, never the host.
#include <chrono>
#include <ctime>

namespace {

long long HostNanos() {
  const auto now = std::chrono::steady_clock::now();  // expect-diag: rdet-wallclock
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

long long HostSeconds() {
  return static_cast<long long>(time(nullptr));  // expect-diag: rdet-wallclock
}

long long SystemNow() {
  // expect-diag: rdet-wallclock
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long long CoarseClock() {
  timespec ts{};
  clock_gettime(0, &ts);  // expect-diag: rdet-wallclock
  return ts.tv_sec;
}

}  // namespace

int main() {
  return HostNanos() + HostSeconds() + SystemNow() + CoarseClock() > 0 ? 0 : 1;
}
