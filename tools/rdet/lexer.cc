#include "lexer.h"

#include <cctype>
#include <cstring>

namespace rdet {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '$';
}

// Operators we want kept whole. Longest-match; everything else is emitted
// one character at a time. Three-character operators decompose harmlessly
// for our purposes (`<<=` -> `<<` `=`).
constexpr std::string_view kTwoCharOps[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
};

class Lexer {
 public:
  explicit Lexer(LexedFile& f) : f_(f), s_(f.content) {}

  void Run() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\n') {
        Advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        Advance();
        continue;
      }
      if (c == '/' && Peek(1) == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        LexDirective();
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentOrLiteralPrefix();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))) != 0)) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString(pos_);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral();
        continue;
      }
      LexPunct();
    }
    // Fill the line->has-code map.
    f_.line_has_code.assign(static_cast<size_t>(line_ + 2), false);
    for (const Token& t : f_.tokens) {
      if (static_cast<size_t>(t.line) < f_.line_has_code.size()) {
        f_.line_has_code[static_cast<size_t>(t.line)] = true;
      }
    }
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < s_.size() ? s_[pos_ + ahead] : '\0';
  }

  void Advance() {
    if (s_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void AdvanceN(size_t n) {
    for (size_t i = 0; i < n && pos_ < s_.size(); ++i) Advance();
  }

  void Emit(TokKind kind, size_t start, int line, int col) {
    f_.tokens.push_back(Token{kind,
                              std::string_view(s_).substr(start, pos_ - start),
                              line, col});
  }

  void LexLineComment() {
    const int line = line_;
    const bool owns = at_line_start_ || !LineHasCodeSoFar(line);
    const size_t text_start = pos_ + 2;
    while (pos_ < s_.size() && s_[pos_] != '\n') Advance();
    f_.comments.push_back(Comment{
        line, line, owns,
        std::string_view(s_).substr(text_start, pos_ - text_start)});
  }

  void LexBlockComment() {
    const int line = line_;
    const bool owns = at_line_start_ || !LineHasCodeSoFar(line);
    const size_t text_start = pos_ + 2;
    AdvanceN(2);
    size_t text_end = s_.size();
    while (pos_ < s_.size()) {
      if (s_[pos_] == '*' && Peek(1) == '/') {
        text_end = pos_;
        AdvanceN(2);
        break;
      }
      Advance();
    }
    f_.comments.push_back(Comment{
        line, line_, owns,
        std::string_view(s_).substr(text_start, text_end - text_start)});
  }

  // Skips a preprocessor directive line (honoring backslash continuations),
  // capturing `#include` targets on the way.
  void LexDirective() {
    Advance();  // '#'
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t')) {
      Advance();
    }
    size_t name_start = pos_;
    while (pos_ < s_.size() && IsIdentCont(s_[pos_])) Advance();
    const std::string_view name =
        std::string_view(s_).substr(name_start, pos_ - name_start);
    if (name == "include") {
      while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t')) {
        Advance();
      }
      const char open = pos_ < s_.size() ? s_[pos_] : '\0';
      const char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
      if (close != '\0') {
        Advance();
        const size_t inc_start = pos_;
        while (pos_ < s_.size() && s_[pos_] != close && s_[pos_] != '\n') {
          Advance();
        }
        f_.includes.emplace_back(s_.substr(inc_start, pos_ - inc_start));
      }
    }
    // Consume to end of line, honoring continuations and comments that
    // could hide the newline.
    while (pos_ < s_.size() && s_[pos_] != '\n') {
      if (s_[pos_] == '\\' && Peek(1) == '\n') {
        AdvanceN(2);
        continue;
      }
      if (s_[pos_] == '/' && Peek(1) == '/') {
        LexLineComment();
        break;
      }
      if (s_[pos_] == '/' && Peek(1) == '*') {
        LexBlockComment();
        continue;
      }
      Advance();
    }
    at_line_start_ = true;
  }

  void LexIdentOrLiteralPrefix() {
    const size_t start = pos_;
    const int line = line_, col = col_;
    while (pos_ < s_.size() && IsIdentCont(s_[pos_])) Advance();
    const std::string_view id =
        std::string_view(s_).substr(start, pos_ - start);
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (id == "R" || id == "u8R" || id == "uR" || id == "LR")) {
      LexRawString(start);
      return;
    }
    if (pos_ < s_.size() && s_[pos_] == '"' &&
        (id == "u8" || id == "u" || id == "L")) {
      LexString(start);
      return;
    }
    if (pos_ < s_.size() && s_[pos_] == '\'' &&
        (id == "u8" || id == "u" || id == "L")) {
      LexCharLiteral();
      return;
    }
    f_.tokens.push_back(Token{TokKind::kIdent, id, line, col});
  }

  void LexNumber() {
    const size_t start = pos_;
    const int line = line_, col = col_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (IsIdentCont(c) || c == '.' || c == '\'') {
        Advance();
        continue;
      }
      if ((c == '+' || c == '-') && pos_ > start) {
        const char prev = s_[pos_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          Advance();
          continue;
        }
      }
      break;
    }
    Emit(TokKind::kNumber, start, line, col);
  }

  void LexString(size_t start) {
    const int line = line_, col = col_;
    Advance();  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        AdvanceN(2);
        continue;
      }
      Advance();
      if (c == '"' || c == '\n') break;  // '\n': unterminated, bail
    }
    Emit(TokKind::kString, start, line, col);
  }

  void LexRawString(size_t start) {
    const int line = line_, col = col_;
    Advance();  // opening quote
    const size_t delim_start = pos_;
    while (pos_ < s_.size() && s_[pos_] != '(') Advance();
    const std::string closer =
        ")" + s_.substr(delim_start, pos_ - delim_start) + "\"";
    while (pos_ < s_.size() &&
           s_.compare(pos_, closer.size(), closer) != 0) {
      Advance();
    }
    AdvanceN(closer.size());
    Emit(TokKind::kString, start, line, col);
  }

  void LexCharLiteral() {
    const size_t start = pos_;
    const int line = line_, col = col_;
    Advance();  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '\\') {
        AdvanceN(2);
        continue;
      }
      Advance();
      if (c == '\'' || c == '\n') break;
    }
    Emit(TokKind::kChar, start, line, col);
  }

  void LexPunct() {
    const size_t start = pos_;
    const int line = line_, col = col_;
    for (std::string_view op : kTwoCharOps) {
      if (s_.compare(pos_, op.size(), op) == 0) {
        AdvanceN(op.size());
        Emit(TokKind::kPunct, start, line, col);
        return;
      }
    }
    Advance();
    Emit(TokKind::kPunct, start, line, col);
  }

  // True if a token was already emitted on `line` (used to decide whether a
  // comment "owns" its line, i.e. is not trailing code).
  bool LineHasCodeSoFar(int line) const {
    return !f_.tokens.empty() && f_.tokens.back().line == line;
  }

  LexedFile& f_;
  const std::string& s_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool at_line_start_ = true;
};

}  // namespace

void LexCpp(LexedFile& f) {
  f.tokens.clear();
  f.comments.clear();
  f.includes.clear();
  Lexer(f).Run();
}

bool LineHasCommentNeedle(const LexedFile& f, int line,
                          std::string_view needle) {
  for (const Comment& c : f.comments) {
    if (line < c.line || line > c.end_line) continue;
    if (c.text.find(needle) != std::string_view::npos) return true;
  }
  return false;
}

}  // namespace rdet
