// Minimal C++ lexer for the rdet token engine.
//
// Produces a flat token stream (identifiers, numbers, literals, operators)
// with line/column positions, a side list of comments (needed for the
// suppression annotations and fixture `expect-diag:` markers), and the
// `#include` targets of the file (needed to assemble the cross-file
// declaration table). It deliberately does not preprocess: directive lines
// are skipped wholesale except for include capture, so tokens under
// `#ifdef` branches are all scanned (conservative for a lint).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rdet {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind;
  std::string_view text;  // views into LexedFile::content
  int line = 0;           // 1-based
  int col = 0;            // 1-based
};

struct Comment {
  int line = 0;      // first line the comment occupies
  int end_line = 0;  // last line (same as `line` for // comments)
  bool owns_line = false;  // nothing but whitespace precedes it on `line`
  std::string_view text;   // without the // or /* */ markers
};

struct LexedFile {
  std::string path;     // as given to the scanner (normalized, '/'-separated)
  std::string content;  // owns the bytes all string_views point into
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<std::string> includes;  // "#include" targets, quotes/brackets stripped
  std::vector<bool> line_has_code;    // 1-based; true if any token on the line
};

// Lexes f.content into tokens/comments/includes. Handles //, /* */, string
// and char literals (including raw strings and encoding prefixes), numbers
// (pp-number rules, good enough), and multi-char operators. `::` is emitted
// as one token so a lone `:` unambiguously separates a range-for.
void LexCpp(LexedFile& f);

// True if any comment that covers `line` contains `needle`.
bool LineHasCommentNeedle(const LexedFile& f, int line, std::string_view needle);

}  // namespace rdet
