// rdet — a determinism lint for this repository.
//
// The repo's core guarantee is bit-identical virtual time across host
// thread counts, schedulers, and checker on/off. That guarantee is
// enforced at runtime by bench gates; rdet rejects the *sources* of
// nondeterminism at compile/lint time instead. Six repo-specific checks:
//
//   rdet-wallclock        wall-clock/time sources (std::chrono clocks,
//                         time(), gettimeofday, clock_gettime, rdtsc)
//   rdet-unseeded-random  std::random_device / rand / arc4random & friends
//   rdet-unordered-iter   range-for / iterator loops over
//                         std::unordered_{map,set}: iteration order is
//                         implementation-defined and leaks into any output
//                         it feeds. Suppressible per-loop with a
//                         `// rdet:order-independent` annotation.
//   rdet-ptr-order        pointer values escaping into ordering or output:
//                         std::hash<T*>, pointer->integer reinterpret_casts
//                         fed to comparators/serializers/trace sinks
//   rdet-ptr-key          raw-pointer keys in ordered containers
//                         (std::map<T*,..> / std::set<T*>)
//   rdet-blocking         blocking calls in src/: sleeps and file IO
//                         outside the allowlisted obs-dump/CLI paths
//
// Two interchangeable engines produce raw findings:
//   - the built-in token engine (always available, no dependencies):
//     a C++ lexer plus a cross-file declaration table; and
//   - a ClangTooling AST-matcher engine (compiled when Clang dev headers
//     are available; `--engine=clang`), driven by compile_commands.json.
// A shared pipeline then applies per-check path scopes, inline
// NOLINT(rdet-*) / NOLINTNEXTLINE(rdet-*) / rdet:order-independent
// suppressions, and the checked-in allowlist, and prints clang-style
// diagnostics. Fixture tests (`--self-test`) assert every check both
// fires and stays quiet via `// expect-diag:` markers.
#pragma once

#include <array>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace rdet {

enum class Check {
  kWallclock = 0,
  kUnseededRandom,
  kUnorderedIter,
  kPtrOrder,
  kPtrKey,
  kBlocking,
};
inline constexpr int kNumChecks = 6;

std::string_view CheckName(Check c);
// Returns false for an unknown name.
bool CheckFromName(std::string_view name, Check& out);

struct Finding {
  Check check;
  std::string file;  // normalized path, relative to --root when possible
  int line = 0;
  int col = 0;
  std::string message;
  std::vector<std::string> notes;  // rendered as `note:` lines

  // Orders diagnostics deterministically: (file, line, col, check).
  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (col != o.col) return col < o.col;
    return static_cast<int>(check) < static_cast<int>(o.check);
  }
};

// One allowlist entry: suppress `check` (or all checks, for "*") in any
// file whose normalized path contains `path_substring`.
struct AllowEntry {
  bool all_checks = false;
  Check check = Check::kWallclock;
  std::string path_substring;
};

struct Options {
  std::string root;                 // repo root; paths reported relative to it
  std::vector<std::string> roots;   // scan roots relative to `root`
  std::string compile_commands_dir; // -p: build dir with compile_commands.json
  std::string allowlist_path;       // empty = <root>/tools/rdet/rdet-allow.txt
  bool use_allowlist = true;
  bool use_scopes = true;           // per-check path scopes (off in self-test)
  bool verbose = false;
  std::array<bool, kNumChecks> enabled{};  // default: all true

  Options() { enabled.fill(true); }
};

// The scanned corpus: every lexed file keyed by normalized path, plus the
// cross-file declaration table the token engine builds over it.
struct Corpus {
  // Keyed by normalized path. std::map: deterministic iteration order —
  // rdet must itself be deterministic.
  std::map<std::string, LexedFile> files;
};

// --- engines ----------------------------------------------------------------

// Built-in engine: lexes nothing (corpus is pre-lexed), walks tokens.
void RunTokenEngine(const Options& opts, const Corpus& corpus,
                    std::vector<Finding>& out);

// Clang AST engine; weak availability. Returns false (with `error` set)
// when the binary was built without Clang dev headers or the tool failed
// to run. Findings land unfiltered in `out`; the shared pipeline filters.
bool RunClangEngine(const Options& opts, const std::vector<std::string>& tus,
                    std::vector<Finding>& out, std::string& error);
bool ClangEngineAvailable();

// --- shared pipeline --------------------------------------------------------

// Loads + lexes every *.h/*.cc/*.hpp/*.hh/*.cpp under opts.roots (paths
// containing "/fixtures/" and build trees are skipped). Returns false on IO
// error.
bool LoadCorpus(const Options& opts, Corpus& corpus, std::string& error);

// Loads a single file into the corpus (self-test mode).
bool LoadFile(const std::string& path, const std::string& report_path,
              Corpus& corpus, std::string& error);

bool ParseAllowlist(const std::string& path, std::vector<AllowEntry>& out,
                    std::string& error);

// True when `check` applies to `file` (normalized, root-relative) at all.
// Scope policy (documented in DESIGN.md):
//   - rdet-blocking is scoped to src/ (tools/tests/bench are host-side
//     CLIs where file IO is the product);
//   - rdet-unordered-iter is scoped to src/ and tools/ (what they iterate
//     reaches sim-visible state or emitted reports);
//   - every other check applies everywhere it is run.
bool CheckInScope(Check check, std::string_view file);

struct FilterStats {
  int suppressed_inline = 0;
  int allowlisted = 0;
  int out_of_scope = 0;
};

// Applies scope, inline suppressions (read from the corpus' comments), and
// the allowlist; returns surviving findings sorted deterministically.
std::vector<Finding> FilterFindings(const Options& opts, const Corpus& corpus,
                                    const std::vector<AllowEntry>& allow,
                                    std::vector<Finding> raw,
                                    FilterStats& stats);

// Prints clang-style "file:line:col: warning: ... [rdet-x]" diagnostics.
void PrintFindings(const std::vector<Finding>& findings);

// --- self-test --------------------------------------------------------------

// Runs the fixture harness over every *.cc/*.h in `dir`: each file is
// analyzed in isolation with all scopes disabled and no allowlist;
// `// expect-diag: rdet-<check>` comments (trailing = this line, on a line
// of their own = next code line) must match the produced findings exactly.
// Returns the number of mismatches (0 = pass).
int RunSelfTest(const std::string& dir, bool use_clang_engine,
                const std::string& compile_commands_dir);

// --- small utilities --------------------------------------------------------

std::string NormalizePath(std::string path);

}  // namespace rdet
