#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rdet.h"

namespace rdet {
namespace {

constexpr std::string_view kCheckNames[kNumChecks] = {
    "rdet-wallclock",    "rdet-unseeded-random", "rdet-unordered-iter",
    "rdet-ptr-order",    "rdet-ptr-key",         "rdet-blocking",
};

bool HasSourceExtension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".hpp" || ext == ".hh" ||
         ext == ".cpp" || ext == ".cxx";
}

bool ReadFileToString(const std::string& path, std::string& out,
                      std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

// Does `text` carry `marker` (NOLINT / NOLINTNEXTLINE) that suppresses
// `name`? Bare marker (no parenthesized list) suppresses everything, for
// clang-tidy compatibility; a list must contain the check name, `rdet-*`,
// or `*`.
bool MatchesNolint(std::string_view text, std::string_view marker,
                   std::string_view name) {
  size_t pos = 0;
  while ((pos = text.find(marker, pos)) != std::string_view::npos) {
    const size_t after = pos + marker.size();
    pos = after;
    // Reject a prefix match ("NOLINT" inside "NOLINTNEXTLINE").
    if (after < text.size() &&
        (std::isalnum(static_cast<unsigned char>(text[after])) != 0 ||
         text[after] == '_')) {
      continue;
    }
    if (after >= text.size() || text[after] != '(') return true;  // bare
    const size_t close = text.find(')', after);
    if (close == std::string_view::npos) return true;
    std::string_view list = text.substr(after + 1, close - after - 1);
    while (!list.empty()) {
      const size_t comma = list.find(',');
      std::string_view entry = Trim(list.substr(0, comma));
      if (entry == name || entry == "rdet-*" || entry == "*") return true;
      if (comma == std::string_view::npos) break;
      list.remove_prefix(comma + 1);
    }
  }
  return false;
}

bool InlineSuppressed(const LexedFile& f, const Finding& fd) {
  const std::string_view name = CheckName(fd.check);
  for (const Comment& c : f.comments) {
    const bool on_line = fd.line >= c.line && fd.line <= c.end_line;
    const bool on_prev = fd.line - 1 >= c.line && fd.line - 1 <= c.end_line;
    if (on_line && MatchesNolint(c.text, "NOLINT", name)) return true;
    if (on_prev && MatchesNolint(c.text, "NOLINTNEXTLINE", name)) return true;
    if (fd.check == Check::kUnorderedIter && (on_line || on_prev) &&
        c.text.find("rdet:order-independent") != std::string_view::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string_view CheckName(Check c) {
  return kCheckNames[static_cast<size_t>(c)];
}

bool CheckFromName(std::string_view name, Check& out) {
  for (int i = 0; i < kNumChecks; ++i) {
    if (kCheckNames[i] == name) {
      out = static_cast<Check>(i);
      return true;
    }
  }
  return false;
}

std::string NormalizePath(std::string path) {
  std::string out = std::filesystem::path(path).lexically_normal()
                        .generic_string();
  if (out.size() > 2 && out.compare(0, 2, "./") == 0) out = out.substr(2);
  return out;
}

bool LoadFile(const std::string& path, const std::string& report_path,
              Corpus& corpus, std::string& error) {
  LexedFile f;
  f.path = NormalizePath(report_path);
  if (!ReadFileToString(path, f.content, error)) return false;
  LexCpp(f);
  corpus.files.emplace(f.path, std::move(f));
  return true;
}

bool LoadCorpus(const Options& opts, Corpus& corpus, std::string& error) {
  namespace fs = std::filesystem;
  for (const std::string& root : opts.roots) {
    const fs::path base = fs::path(opts.root) / root;
    std::error_code ec;
    if (!fs::exists(base, ec)) {
      error = "scan root does not exist: " + base.string();
      return false;
    }
    for (fs::recursive_directory_iterator it(base, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const fs::path& p = it->path();
      if (!HasSourceExtension(p)) continue;
      const std::string rel =
          NormalizePath(fs::path(root) / p.lexically_relative(base));
      // rdet's own lint fixtures intentionally contain findings.
      if (rel.find("/fixtures/") != std::string::npos) continue;
      if (!LoadFile(p.string(), rel, corpus, error)) return false;
    }
    if (ec) {
      error = "walking " + base.string() + ": " + ec.message();
      return false;
    }
  }
  return true;
}

bool ParseAllowlist(const std::string& path, std::vector<AllowEntry>& out,
                    std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open allowlist " + path;
    return false;
  }
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view s = Trim(line);
    if (const size_t hash = s.find('#'); hash != std::string_view::npos) {
      s = Trim(s.substr(0, hash));
    }
    if (s.empty()) continue;
    const size_t sp = s.find_first_of(" \t");
    if (sp == std::string_view::npos) {
      error = path + ":" + std::to_string(lineno) +
              ": expected '<check> <path-substring>'";
      return false;
    }
    AllowEntry e;
    const std::string_view check_name = s.substr(0, sp);
    if (check_name == "*") {
      e.all_checks = true;
    } else if (!CheckFromName(check_name, e.check)) {
      error = path + ":" + std::to_string(lineno) + ": unknown check '" +
              std::string(check_name) + "'";
      return false;
    }
    e.path_substring = std::string(Trim(s.substr(sp + 1)));
    if (e.path_substring.empty()) {
      error = path + ":" + std::to_string(lineno) + ": empty path pattern";
      return false;
    }
    out.push_back(std::move(e));
  }
  return true;
}

bool CheckInScope(Check check, std::string_view file) {
  const auto under = [&](std::string_view prefix) {
    return file.size() > prefix.size() &&
           file.compare(0, prefix.size(), prefix) == 0 &&
           file[prefix.size()] == '/';
  };
  switch (check) {
    case Check::kBlocking:
      return under("src");
    case Check::kUnorderedIter:
      return under("src") || under("tools");
    default:
      return true;
  }
}

std::vector<Finding> FilterFindings(const Options& opts, const Corpus& corpus,
                                    const std::vector<AllowEntry>& allow,
                                    std::vector<Finding> raw,
                                    FilterStats& stats) {
  std::vector<Finding> kept;
  for (Finding& fd : raw) {
    if (!opts.enabled[static_cast<size_t>(fd.check)]) continue;
    auto fit = corpus.files.find(fd.file);
    if (fit == corpus.files.end()) {
      // Outside the scanned tree (system header seen by the clang engine).
      ++stats.out_of_scope;
      continue;
    }
    if (opts.use_scopes && !CheckInScope(fd.check, fd.file)) {
      ++stats.out_of_scope;
      continue;
    }
    if (InlineSuppressed(fit->second, fd)) {
      ++stats.suppressed_inline;
      continue;
    }
    bool allowed = false;
    for (const AllowEntry& e : allow) {
      if (!e.all_checks && e.check != fd.check) continue;
      if (fd.file.find(e.path_substring) != std::string::npos) {
        allowed = true;
        break;
      }
    }
    if (allowed) {
      ++stats.allowlisted;
      continue;
    }
    kept.push_back(std::move(fd));
  }
  std::sort(kept.begin(), kept.end());
  // Engines can report one site several times (a matcher firing per
  // template instantiation, or nested TypeLocs for one written type);
  // collapse to one finding per (file, line, check).
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.check == b.check;
                         }),
             kept.end());
  return kept;
}

void PrintFindings(const std::vector<Finding>& findings) {
  for (const Finding& fd : findings) {
    std::cout << fd.file << ':' << fd.line << ':' << fd.col
              << ": warning: " << fd.message << " ["
              << CheckName(fd.check) << "]\n";
    for (const std::string& n : fd.notes) {
      std::cout << fd.file << ':' << fd.line << ':' << fd.col
                << ": note: " << n << "\n";
    }
  }
}

// --- self-test --------------------------------------------------------------

namespace {

struct Expectation {
  int line;
  Check check;
  bool operator<(const Expectation& o) const {
    if (line != o.line) return line < o.line;
    return static_cast<int>(check) < static_cast<int>(o.check);
  }
  bool operator==(const Expectation& o) const {
    return line == o.line && check == o.check;
  }
};

int NextCodeLine(const LexedFile& f, int after) {
  for (size_t l = static_cast<size_t>(after) + 1; l < f.line_has_code.size();
       ++l) {
    if (f.line_has_code[l]) return static_cast<int>(l);
  }
  return after + 1;
}

std::vector<Expectation> ParseExpectations(const LexedFile& f,
                                           std::vector<std::string>& errors) {
  std::vector<Expectation> out;
  for (const Comment& c : f.comments) {
    size_t pos = c.text.find("expect-diag:");
    if (pos == std::string_view::npos) continue;
    std::string_view rest = c.text.substr(pos + 12);
    const int line = c.owns_line ? NextCodeLine(f, c.end_line) : c.line;
    // Whitespace/comma-separated list of check names.
    std::string token;
    std::istringstream ss{std::string(rest)};
    while (ss >> token) {
      while (!token.empty() && token.back() == ',') token.pop_back();
      if (token.empty()) continue;
      Check check;
      if (!CheckFromName(token, check)) {
        errors.push_back(f.path + ":" + std::to_string(c.line) +
                         ": unknown check in expect-diag: '" + token + "'");
        continue;
      }
      out.push_back(Expectation{line, check});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

int RunSelfTest(const std::string& dir, bool use_clang_engine,
                const std::string& compile_commands_dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; it != end && !ec;
       it.increment(ec)) {
    if (it->is_regular_file() && HasSourceExtension(it->path())) {
      files.push_back(it->path().string());
    }
  }
  if (ec || files.empty()) {
    std::cout << "rdet self-test: no fixtures under " << dir << "\n";
    return 1;
  }
  std::sort(files.begin(), files.end());

  int mismatches = 0;
  int total_expected = 0;
  for (const std::string& path : files) {
    Corpus corpus;
    std::string error;
    const std::string report = fs::path(path).filename().string();
    if (!LoadFile(path, report, corpus, error)) {
      std::cout << "rdet self-test: " << error << "\n";
      ++mismatches;
      continue;
    }
    const LexedFile& lexed = corpus.files.begin()->second;
    std::vector<std::string> parse_errors;
    std::vector<Expectation> expected = ParseExpectations(lexed, parse_errors);
    for (const std::string& e : parse_errors) {
      std::cout << e << "\n";
      ++mismatches;
    }
    total_expected += static_cast<int>(expected.size());

    Options opts;
    opts.use_scopes = false;
    opts.use_allowlist = false;
    std::vector<Finding> raw;
    if (use_clang_engine) {
      std::string engine_error;
      Options clang_opts = opts;
      clang_opts.compile_commands_dir = compile_commands_dir;
      if (!RunClangEngine(clang_opts, {path}, raw, engine_error)) {
        std::cout << "rdet self-test: clang engine failed on " << path << ": "
                  << engine_error << "\n";
        ++mismatches;
        continue;
      }
      // The clang engine reports absolute paths; remap onto the fixture's
      // report name so suppression lookup and comparison line up.
      for (Finding& fd : raw) fd.file = report;
    } else {
      RunTokenEngine(opts, corpus, raw);
    }
    FilterStats stats;
    std::vector<Finding> got =
        FilterFindings(opts, corpus, {}, std::move(raw), stats);

    std::vector<Expectation> actual;
    actual.reserve(got.size());
    for (const Finding& fd : got) {
      actual.push_back(Expectation{fd.line, fd.check});
    }
    std::sort(actual.begin(), actual.end());

    std::vector<Expectation> missing, unexpected;
    std::set_difference(expected.begin(), expected.end(), actual.begin(),
                        actual.end(), std::back_inserter(missing));
    std::set_difference(actual.begin(), actual.end(), expected.begin(),
                        expected.end(), std::back_inserter(unexpected));
    for (const Expectation& e : missing) {
      std::cout << report << ":" << e.line << ": expected diagnostic did not "
                << "fire: [" << CheckName(e.check) << "]\n";
      ++mismatches;
    }
    for (const Expectation& e : unexpected) {
      std::cout << report << ":" << e.line << ": unexpected diagnostic: ["
                << CheckName(e.check) << "]\n";
      ++mismatches;
    }
  }
  std::cout << "rdet self-test: " << files.size() << " fixtures, "
            << total_expected << " expected diagnostics, " << mismatches
            << " mismatch(es) [" << (use_clang_engine ? "clang" : "token")
            << " engine]\n";
  return mismatches;
}

}  // namespace rdet
