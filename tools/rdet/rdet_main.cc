// rdet CLI. See rdet.h for the check catalogue and DESIGN.md ("Static
// determinism lint") for the policy. Exit codes: 0 clean, 1 findings or
// self-test mismatches, 2 usage/internal error.
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "rdet.h"

namespace {

void PrintUsage() {
  std::cout <<
      "usage: rdet [options] [scan-roots...]\n"
      "\n"
      "Determinism lint over this repository's sources. Default scan roots:\n"
      "src tests bench tools (relative to --root).\n"
      "\n"
      "options:\n"
      "  --root DIR          repository root (default: .)\n"
      "  -p DIR              build dir containing compile_commands.json\n"
      "                      (used by the clang engine for flags/TU list)\n"
      "  --engine=token|clang  analysis engine (default: token; clang\n"
      "                      requires a build with Clang dev headers)\n"
      "  --check=rdet-NAME   run only the named check (repeatable)\n"
      "  --allowlist FILE    allowlist path (default:\n"
      "                      <root>/tools/rdet/rdet-allow.txt)\n"
      "  --no-allowlist      ignore the allowlist\n"
      "  --self-test DIR     run the fixture harness over DIR and exit\n"
      "  --list-checks       print the check catalogue and exit\n"
      "  -v                  verbose\n";
}

void PrintChecks() {
  using rdet::Check;
  const struct { Check c; const char* what; } rows[] = {
      {Check::kWallclock, "wall-clock/time sources (chrono clocks, time, "
                          "gettimeofday, clock_gettime, rdtsc)"},
      {Check::kUnseededRandom, "unseeded randomness (std::random_device, "
                               "rand, arc4random & friends)"},
      {Check::kUnorderedIter, "range-for/iterator loops over "
                              "std::unordered_{map,set}; suppress with "
                              "// rdet:order-independent"},
      {Check::kPtrOrder, "pointer values escaping into ordering or output "
                         "(std::hash<T*>, ptr->int casts fed to sinks)"},
      {Check::kPtrKey, "raw-pointer keys in ordered containers "
                       "(std::map<T*,..>, std::set<T*>)"},
      {Check::kBlocking, "blocking calls/file IO in src/ outside the "
                         "allowlisted obs-dump/CLI paths"},
  };
  for (const auto& r : rows) {
    std::cout << "  " << rdet::CheckName(r.c) << "\n      " << r.what << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  rdet::Options opts;
  opts.root = ".";
  std::string engine = "token";
  std::string self_test_dir;
  bool checks_restricted = false;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rdet: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (arg == "--list-checks") {
      PrintChecks();
      return 0;
    } else if (arg == "--root") {
      opts.root = need_value("--root");
    } else if (arg == "-p") {
      opts.compile_commands_dir = need_value("-p");
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine = std::string(arg.substr(9));
    } else if (arg.rfind("--check=", 0) == 0) {
      if (!checks_restricted) {
        opts.enabled.fill(false);
        checks_restricted = true;
      }
      rdet::Check c;
      if (!rdet::CheckFromName(arg.substr(8), c)) {
        std::cerr << "rdet: unknown check '" << arg.substr(8)
                  << "' (see --list-checks)\n";
        return 2;
      }
      opts.enabled[static_cast<size_t>(c)] = true;
    } else if (arg == "--allowlist") {
      opts.allowlist_path = need_value("--allowlist");
    } else if (arg == "--no-allowlist") {
      opts.use_allowlist = false;
    } else if (arg == "--self-test") {
      self_test_dir = need_value("--self-test");
    } else if (arg == "-v") {
      opts.verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rdet: unknown option " << arg << "\n";
      PrintUsage();
      return 2;
    } else {
      opts.roots.emplace_back(arg);
    }
  }

  if (engine != "token" && engine != "clang") {
    std::cerr << "rdet: unknown engine '" << engine << "'\n";
    return 2;
  }
  const bool use_clang = engine == "clang";
  if (use_clang && !rdet::ClangEngineAvailable()) {
    std::cerr << "rdet: this binary was built without the Clang engine "
                 "(configure with Clang dev headers installed; see "
                 "tools/rdet/CMakeLists.txt)\n";
    return 2;
  }

  if (!self_test_dir.empty()) {
    return rdet::RunSelfTest(self_test_dir, use_clang,
                             opts.compile_commands_dir) == 0 ? 0 : 1;
  }

  if (opts.roots.empty()) opts.roots = {"src", "tests", "bench", "tools"};
  std::error_code ec;
  const auto abs_root = std::filesystem::absolute(opts.root, ec);
  if (!ec) opts.root = abs_root.string();

  rdet::Corpus corpus;
  std::string error;
  if (!rdet::LoadCorpus(opts, corpus, error)) {
    std::cerr << "rdet: " << error << "\n";
    return 2;
  }
  if (opts.verbose) {
    std::cout << "rdet: scanning " << corpus.files.size() << " files under "
              << opts.root << " [" << engine << " engine]\n";
  }

  std::vector<rdet::AllowEntry> allow;
  if (opts.use_allowlist) {
    std::string path = opts.allowlist_path;
    if (path.empty()) path = opts.root + "/tools/rdet/rdet-allow.txt";
    if (std::filesystem::exists(path)) {
      if (!rdet::ParseAllowlist(path, allow, error)) {
        std::cerr << "rdet: " << error << "\n";
        return 2;
      }
    } else if (!opts.allowlist_path.empty()) {
      std::cerr << "rdet: " << error << "allowlist not found: " << path
                << "\n";
      return 2;
    }
  }

  std::vector<rdet::Finding> raw;
  if (use_clang) {
    std::vector<std::string> tus;
    for (const auto& [path, file] : corpus.files) {
      const std::string ext =
          std::filesystem::path(path).extension().string();
      if (ext == ".cc" || ext == ".cpp" || ext == ".cxx") {
        tus.push_back(opts.root + "/" + path);
      }
    }
    if (!rdet::RunClangEngine(opts, tus, raw, error)) {
      std::cerr << "rdet: clang engine: " << error << "\n";
      return 2;
    }
    // Remap absolute paths under the root back to corpus-relative form.
    const std::string prefix = opts.root + "/";
    for (rdet::Finding& fd : raw) {
      fd.file = rdet::NormalizePath(fd.file);
      if (fd.file.rfind(prefix, 0) == 0) {
        fd.file = fd.file.substr(prefix.size());
      }
    }
  } else {
    rdet::RunTokenEngine(opts, corpus, raw);
  }

  rdet::FilterStats stats;
  std::vector<rdet::Finding> findings =
      rdet::FilterFindings(opts, corpus, allow, std::move(raw), stats);
  rdet::PrintFindings(findings);
  std::cout << "rdet: " << findings.size() << " finding(s) across "
            << corpus.files.size() << " files (" << stats.suppressed_inline
            << " suppressed inline, " << stats.allowlisted
            << " allowlisted)\n";
  return findings.empty() ? 0 : 1;
}
