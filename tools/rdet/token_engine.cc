// Built-in (dependency-free) rdet engine: token-level analysis over the
// lexed corpus. Where the Clang engine resolves types through the AST,
// this engine approximates with a cross-file declaration table: every
// variable/member declared (anywhere in the corpus) as an unordered
// container is recorded by name, and includes are resolved so the nearest
// declaration wins when two files declare the same identifier with
// different container kinds (e.g. `pending_` is a std::map in rpc.h but an
// unordered_map in check.h). Heuristic by design; the suppression
// annotations exist for the residue, and the fixture suite pins the
// behavior of every check.
#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "rdet.h"

namespace rdet {
namespace {

using SvSet = std::set<std::string_view>;

const SvSet kUnorderedNames = {"unordered_map", "unordered_set",
                               "unordered_multimap", "unordered_multiset"};
// Ordered/sequence containers recorded as anti-entries so a nearer
// ordered declaration of the same name overrides a distant unordered one.
const SvSet kOrderedNames = {"map",  "set",   "multimap", "multiset",
                             "vector", "deque", "array",  "list",
                             "string", "span"};

// rdet-wallclock: flagged wherever the identifier appears.
const SvSet kWallclockIdents = {
    "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
    "clock_gettime", "timespec_get", "ftime", "__rdtsc", "__rdtscp", "_rdtsc",
    "__builtin_readcyclecounter", "__builtin_ia32_rdtsc", "localtime",
    "gmtime", "mktime", "QueryPerformanceCounter"};
// Flagged only in call position (too generic to flag bare).
const SvSet kWallclockCalls = {"time"};

// rdet-unseeded-random.
const SvSet kRandomIdents = {"random_device",     "arc4random",
                             "arc4random_uniform", "arc4random_buf",
                             "drand48",           "lrand48",
                             "mrand48",           "getentropy",
                             "getrandom"};
const SvSet kRandomCalls = {"rand", "srand", "random", "srandom"};

// rdet-blocking (scoped to src/ by the shared pipeline).
const SvSet kBlockingIdents = {
    "usleep",  "nanosleep", "sleep_for", "sleep_until", "ifstream",
    "ofstream", "fstream",  "fopen",     "freopen",     "fread",
    "fwrite",  "fgets",     "fputs",     "fscanf",      "fclose",
    "system",  "popen",     "fork"};
const SvSet kBlockingCalls = {"sleep"};

// rdet-ptr-order: call names that count as ordering/serialization/output
// sinks for a pointer->integer reinterpret_cast.
const SvSet kSinkNames = {
    "sort",       "stable_sort", "nth_element", "partial_sort",
    "min_element", "max_element", "lower_bound", "upper_bound",
    "binary_search", "Append",   "AppendJson",  "arg",
    "Arg",        "AddArg",      "Note",        "Trace",
    "Span",       "Record",      "Emit",        "Print",
    "printf",     "fprintf",     "snprintf",    "sprintf",
    "Serialize",  "Encode",      "Str",         "U32",
    "U64",        "Hash",        "hash",        "Mix",
    "Combine",    "Key"};

const SvSet kIntTypeNames = {"uint64_t", "uintptr_t", "intptr_t", "size_t",
                             "int64_t",  "uint32_t",  "int32_t",  "long",
                             "int",      "unsigned",  "uint_fast64_t",
                             "ptrdiff_t"};

bool IsPunct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
bool IsIdent(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

// Finds the index of the `>` matching the `<` at tokens[open] (which must
// be "<"). Returns -1 when this is not a template argument list after all
// (statement/bracket boundaries, unmatched close, or scan cap). A `>>`
// token closes two levels; if it closes past zero it still counts as the
// closer.
int MatchAngle(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  int paren = 0;
  const size_t cap = std::min(toks.size(), open + 256);
  for (size_t i = open; i < cap; ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") ++paren;
    else if (t.text == ")") {
      if (paren == 0) return -1;  // comparison inside a call arg list
      --paren;
    } else if (paren > 0) {
      continue;
    } else if (t.text == "<") {
      ++depth;
    } else if (t.text == ">") {
      if (--depth == 0) return static_cast<int>(i);
    } else if (t.text == ">>") {
      depth -= 2;
      if (depth <= 0) return static_cast<int>(i);
    } else if (t.text == ";" || t.text == "{" || t.text == "}") {
      return -1;
    }
  }
  return -1;
}

// Declaration table entry: is the declared name an unordered container,
// and how many include hops away was the declaration from the file being
// analyzed (0 = same file)?
struct DeclEntry {
  bool unordered = false;
  int distance = 1 << 30;
};

struct FileDecls {
  // name -> declared-as-unordered (per declaring file)
  std::map<std::string_view, bool> decls;
};

// Collects `using X = std::unordered_map<...>;` / typedef alias names
// across the whole corpus (aliases are type names; globally distinctive).
void CollectAliases(const LexedFile& f, std::set<std::string>& aliases) {
  const auto& toks = f.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (IsIdent(toks[i], "using") && toks[i + 1].kind == TokKind::kIdent &&
        IsPunct(toks[i + 2], "=")) {
      for (size_t j = i + 3; j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
        if (toks[j].kind == TokKind::kIdent &&
            kUnorderedNames.count(toks[j].text) != 0 && j + 1 < toks.size() &&
            IsPunct(toks[j + 1], "<")) {
          aliases.insert(std::string(toks[i + 1].text));
          break;
        }
      }
    } else if (IsIdent(toks[i], "typedef")) {
      bool unordered = false;
      size_t last_ident = 0;
      bool have_last = false;
      for (size_t j = i + 1; j < toks.size() && !IsPunct(toks[j], ";"); ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        if (kUnorderedNames.count(toks[j].text) != 0) unordered = true;
        last_ident = j;
        have_last = true;
      }
      if (unordered && have_last) {
        aliases.insert(std::string(toks[last_ident].text));
      }
    }
  }
}

void CollectDecls(const LexedFile& f, const std::set<std::string>& aliases,
                  FileDecls& out) {
  const auto& toks = f.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    const bool is_unordered = kUnorderedNames.count(t.text) != 0;
    const bool is_ordered =
        kOrderedNames.count(t.text) != 0 && i > 0 && IsPunct(toks[i - 1], "::");
    if ((is_unordered || is_ordered) && i + 1 < toks.size() &&
        IsPunct(toks[i + 1], "<")) {
      const int close = MatchAngle(toks, i + 1);
      if (close < 0) continue;
      size_t k = static_cast<size_t>(close) + 1;
      while (k < toks.size() &&
             (IsPunct(toks[k], "&") || IsPunct(toks[k], "*") ||
              IsIdent(toks[k], "const"))) {
        ++k;
      }
      if (k < toks.size() && toks[k].kind == TokKind::kIdent &&
          !IsIdent(toks[k], "const")) {
        out.decls[toks[k].text] = is_unordered;
      }
      // The outermost container decides iteration order, so resume the
      // scan after its template-argument list. Without this, a nested
      // container name (`unordered_map<K, vector<V>> m`) re-matches the
      // shared `>>` closer and claims the same declared name.
      i = static_cast<size_t>(close);
      continue;
    }
    // Alias used as a declaration type: `SlotIndex index_;`
    if (aliases.count(std::string(t.text)) != 0 && i + 1 < toks.size() &&
        toks[i + 1].kind == TokKind::kIdent) {
      out.decls[toks[i + 1].text] = true;
    }
  }
}

// Resolves include strings against corpus paths by suffix match.
std::vector<const std::string*> ResolveInclude(const Corpus& corpus,
                                               const std::string& inc) {
  std::vector<const std::string*> out;
  for (const auto& [path, file] : corpus.files) {
    if (path == inc ||
        (path.size() > inc.size() + 1 &&
         path.compare(path.size() - inc.size(), inc.size(), inc) == 0 &&
         path[path.size() - inc.size() - 1] == '/')) {
      out.push_back(&path);
    }
  }
  return out;
}

class TokenEngine {
 public:
  TokenEngine(const Options& opts, const Corpus& corpus,
              std::vector<Finding>& out)
      : opts_(opts), corpus_(corpus), out_(out) {}

  void Run() {
    for (const auto& [path, file] : corpus_.files) {
      CollectAliases(file, aliases_);
    }
    for (const auto& [path, file] : corpus_.files) {
      CollectDecls(file, aliases_, decls_by_file_[path]);
    }
    for (const auto& [path, file] : corpus_.files) {
      AnalyzeFile(file);
    }
  }

 private:
  bool Enabled(Check c) const {
    return opts_.enabled[static_cast<size_t>(c)];
  }

  void Add(Check check, const LexedFile& f, const Token& at,
           std::string message, std::vector<std::string> notes = {}) {
    Finding fd;
    fd.check = check;
    fd.file = f.path;
    fd.line = at.line;
    fd.col = at.col;
    fd.message = std::move(message);
    fd.notes = std::move(notes);
    out_.push_back(std::move(fd));
  }

  // Effective declaration table for `path`: BFS over resolved includes,
  // nearest declaration wins; ties prefer unordered (conservative).
  std::map<std::string_view, DeclEntry> EffectiveDecls(
      const std::string& path) {
    std::map<std::string_view, DeclEntry> effective;
    // foo.cc's own foo.h is authoritative when member names collide
    // across headers (e.g. two classes both naming a map `regions_`):
    // treat the primary header as distance 0, same as the file itself.
    std::string stem = path;
    if (const size_t dot = stem.rfind('.'); dot != std::string::npos) {
      stem.resize(dot);
    }
    const auto is_primary_header = [&stem](const std::string& p) {
      const size_t dot = p.rfind('.');
      if (dot == std::string::npos || p.compare(0, dot, stem) != 0) {
        return false;
      }
      const std::string_view ext = std::string_view(p).substr(dot);
      return ext == ".h" || ext == ".hh" || ext == ".hpp";
    };
    std::map<std::string, int> dist;
    std::deque<std::string> queue;
    dist[path] = 0;
    queue.push_back(path);
    while (!queue.empty()) {
      const std::string cur = queue.front();
      queue.pop_front();
      const int d = dist[cur];
      auto fit = corpus_.files.find(cur);
      if (fit == corpus_.files.end()) continue;
      const FileDecls& fd = decls_by_file_[cur];
      for (const auto& [name, unordered] : fd.decls) {
        DeclEntry& e = effective[name];
        if (d < e.distance) {
          e.distance = d;
          e.unordered = unordered;
        } else if (d == e.distance) {
          e.unordered = e.unordered || unordered;
        }
      }
      for (const std::string& inc : fit->second.includes) {
        for (const std::string* resolved : ResolveInclude(corpus_, inc)) {
          const int nd = is_primary_header(*resolved) ? 0 : d + 1;
          auto [it, inserted] = dist.emplace(*resolved, nd);
          if (inserted) {
            queue.push_back(*resolved);
          } else if (nd < it->second) {
            it->second = nd;
            queue.push_back(*resolved);
          }
        }
      }
    }
    return effective;
  }

  // True when tokens[i] looks like a free-function call rather than a
  // member access, parameter name, or declaration. Heuristic: must be
  // followed by `(`; must not be preceded by `.`/`->`; a preceding
  // identifier means a declaration (`uint64_t time(...)`), except
  // `return f(...)` / `co_return`.
  bool IsCallPosition(const std::vector<Token>& toks, size_t i) const {
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return false;
    if (i == 0) return true;
    const Token& prev = toks[i - 1];
    if (IsPunct(prev, ".") || IsPunct(prev, "->")) return false;
    if (prev.kind == TokKind::kIdent && prev.text != "return" &&
        prev.text != "co_return" && prev.text != "co_await") {
      return false;
    }
    return true;
  }

  void AnalyzeFile(const LexedFile& f) {
    const auto effective = EffectiveDecls(f.path);
    const auto& toks = f.tokens;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;

      if (Enabled(Check::kWallclock)) CheckWallclock(f, toks, i);
      if (Enabled(Check::kUnseededRandom)) CheckRandom(f, toks, i);
      if (Enabled(Check::kBlocking)) CheckBlocking(f, toks, i);
      if (Enabled(Check::kUnorderedIter) && t.text == "for") {
        CheckForLoop(f, toks, i, effective);
      }
      if (Enabled(Check::kPtrOrder)) CheckPtrOrder(f, toks, i);
      if (Enabled(Check::kPtrKey)) CheckPtrKey(f, toks, i);
    }
  }

  void CheckWallclock(const LexedFile& f, const std::vector<Token>& toks,
                      size_t i) {
    const Token& t = toks[i];
    if (kWallclockIdents.count(t.text) != 0) {
      Add(Check::kWallclock, f, t,
          "wall-clock time source '" + std::string(t.text) +
              "' — host time is nondeterministic across runs and hosts",
          {"use the simulation's virtual clock (sim::Simulation::Now) for "
           "anything sim-visible; annotate host-side measurement harnesses "
           "with // NOLINT(rdet-wallclock) and a rationale"});
      return;
    }
    if (kWallclockCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      Add(Check::kWallclock, f, t,
          "call to wall-clock function '" + std::string(t.text) + "()'",
          {"use virtual time for anything sim-visible"});
    }
  }

  void CheckRandom(const LexedFile& f, const std::vector<Token>& toks,
                   size_t i) {
    const Token& t = toks[i];
    if (kRandomIdents.count(t.text) != 0) {
      Add(Check::kUnseededRandom, f, t,
          "unseeded randomness source '" + std::string(t.text) +
              "' — draws differ on every run",
          {"construct a seeded generator instead (common/rng.h Rng(seed), "
           "or std::mt19937 with an explicit seed)"});
      return;
    }
    if (kRandomCalls.count(t.text) != 0 && IsCallPosition(toks, i)) {
      Add(Check::kUnseededRandom, f, t,
          "call to global-state RNG '" + std::string(t.text) +
              "()' — hidden global seed state is nondeterministic under "
              "threads and across translation units",
          {"use a locally seeded generator (common/rng.h Rng)"});
    }
  }

  void CheckBlocking(const LexedFile& f, const std::vector<Token>& toks,
                     size_t i) {
    const Token& t = toks[i];
    const bool named = kBlockingIdents.count(t.text) != 0;
    const bool call = kBlockingCalls.count(t.text) != 0 &&
                      IsCallPosition(toks, i);
    if (!named && !call) return;
    Add(Check::kBlocking, f, t,
        "blocking call / file IO '" + std::string(t.text) +
            "' in simulation-reachable code",
        {"simulation callbacks must not block on host time or host IO; "
         "if this is a report-dump or CLI path, add it to "
         "tools/rdet/rdet-allow.txt with a rationale"});
  }

  void CheckForLoop(const LexedFile& f, const std::vector<Token>& toks,
                    size_t i,
                    const std::map<std::string_view, DeclEntry>& effective) {
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) return;
    // Find the matching ')' of the for-header.
    int depth = 0;
    size_t close = 0;
    for (size_t j = i + 1; j < toks.size() && j < i + 512; ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      else if (IsPunct(toks[j], ")")) {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
    }
    if (close == 0) return;

    // Range-for: a ':' at depth 1 and no ';' at depth 1.
    size_t colon = 0;
    bool has_semi = false;
    depth = 0;
    for (size_t j = i + 1; j < close; ++j) {
      if (IsPunct(toks[j], "(")) ++depth;
      else if (IsPunct(toks[j], ")")) --depth;
      else if (depth == 1 && IsPunct(toks[j], ";")) has_semi = true;
      else if (depth == 1 && IsPunct(toks[j], ":")) colon = j;
    }

    if (!has_semi && colon != 0) {
      for (size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        auto it = effective.find(toks[j].text);
        if (it != effective.end() && it->second.unordered) {
          ReportUnorderedIter(f, toks[i], toks[j].text, "range-for over");
          return;
        }
      }
      return;
    }
    if (has_semi) {
      // Iterator loop: `for (auto it = m.begin(); ...` in the init part.
      size_t init_end = close;
      depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (IsPunct(toks[j], "(")) ++depth;
        else if (IsPunct(toks[j], ")")) --depth;
        else if (depth == 1 && IsPunct(toks[j], ";")) {
          init_end = j;
          break;
        }
      }
      for (size_t j = i + 2; j + 2 < init_end; ++j) {
        if (toks[j].kind != TokKind::kIdent) continue;
        auto it = effective.find(toks[j].text);
        if (it == effective.end() || !it->second.unordered) continue;
        if ((IsPunct(toks[j + 1], ".") || IsPunct(toks[j + 1], "->")) &&
            (IsIdent(toks[j + 2], "begin") || IsIdent(toks[j + 2], "cbegin"))) {
          ReportUnorderedIter(f, toks[i], toks[j].text, "iterator loop over");
          return;
        }
      }
    }
  }

  void ReportUnorderedIter(const LexedFile& f, const Token& at,
                           std::string_view name, std::string_view how) {
    Add(Check::kUnorderedIter, f, at,
        std::string(how) + " unordered container '" + std::string(name) +
            "' — iteration order is implementation-defined and leaks into "
            "anything it feeds",
        {"if every iteration is provably order-independent (commutative "
         "reduce, per-element writes to distinct slots), annotate the loop "
         "with // rdet:order-independent; otherwise iterate keys in sorted "
         "order or switch to an ordered container"});
  }

  void CheckPtrOrder(const LexedFile& f, const std::vector<Token>& toks,
                     size_t i) {
    const Token& t = toks[i];
    // std::hash<T*>
    if (t.text == "hash" && i > 0 && IsPunct(toks[i - 1], "::") &&
        i + 1 < toks.size() && IsPunct(toks[i + 1], "<")) {
      const int close = MatchAngle(toks, i + 1);
      if (close > 0 && AngleArgsContainTopLevelStar(toks, i + 1,
                                                    static_cast<size_t>(close))) {
        Add(Check::kPtrOrder, f, t,
            "std::hash over a raw pointer — hashes the address, which "
            "differs run to run (ASLR) and orders buckets nondeterministically",
            {"hash a stable identity (id, name, offset) instead"});
      }
      return;
    }
    // reinterpret_cast<integer>(ptr) fed to an ordering/serialization sink.
    if (t.text != "reinterpret_cast" || i + 1 >= toks.size() ||
        !IsPunct(toks[i + 1], "<")) {
      return;
    }
    const int close = MatchAngle(toks, i + 1);
    if (close < 0) return;
    bool has_star = false;
    bool has_int = false;
    for (size_t j = i + 2; j < static_cast<size_t>(close); ++j) {
      if (IsPunct(toks[j], "*")) has_star = true;
      if (toks[j].kind == TokKind::kIdent &&
          kIntTypeNames.count(toks[j].text) != 0) {
        has_int = true;
      }
    }
    if (has_star || !has_int) return;  // not a pointer-to-integer cast

    // Comparison / stream-insert adjacency.
    const size_t after_type = static_cast<size_t>(close) + 1;
    size_t cast_end = after_type;
    if (after_type < toks.size() && IsPunct(toks[after_type], "(")) {
      int d = 0;
      for (size_t j = after_type; j < toks.size() && j < after_type + 256;
           ++j) {
        if (IsPunct(toks[j], "(")) ++d;
        else if (IsPunct(toks[j], ")") && --d == 0) {
          cast_end = j;
          break;
        }
      }
    }
    static const SvSet kCmp = {"<", ">", "<=", ">=", "<<"};
    const bool cmp_after =
        cast_end + 1 < toks.size() && toks[cast_end + 1].kind == TokKind::kPunct &&
        kCmp.count(toks[cast_end + 1].text) != 0;
    const bool cmp_before =
        i > 0 && toks[i - 1].kind == TokKind::kPunct &&
        kCmp.count(toks[i - 1].text) != 0;

    bool sink = cmp_after || cmp_before;
    if (!sink) {
      // Walk outward: does an enclosing call (up to the statement start)
      // have a sink name?
      int d = 0;
      for (size_t j = i; j-- > 0;) {
        if (IsPunct(toks[j], ")")) ++d;
        else if (IsPunct(toks[j], "(")) {
          if (d > 0) {
            --d;
          } else if (j > 0 && toks[j - 1].kind == TokKind::kIdent &&
                     kSinkNames.count(toks[j - 1].text) != 0) {
            sink = true;
            break;
          }
        } else if (d == 0 && (IsPunct(toks[j], ";") || IsPunct(toks[j], "{") ||
                              IsPunct(toks[j], "}"))) {
          break;
        }
      }
    }
    if (sink) {
      Add(Check::kPtrOrder, f, t,
          "pointer value cast to an integer and fed to an "
          "ordering/serialization/output sink — addresses differ run to run",
          {"derive ordering and output from stable identities (ids, region "
           "offsets), never from addresses"});
    }
  }

  void CheckPtrKey(const LexedFile& f, const std::vector<Token>& toks,
                   size_t i) {
    const Token& t = toks[i];
    static const SvSet kOrderedAssoc = {"map", "set", "multimap", "multiset"};
    if (kOrderedAssoc.count(t.text) == 0) return;
    if (i == 0 || !IsPunct(toks[i - 1], "::")) return;
    if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "<")) return;
    const int close = MatchAngle(toks, i + 1);
    if (close < 0) return;
    // First top-level template argument: until a top-level ',' or close.
    int depth = 0;
    size_t last = 0;
    bool have_last = false;
    for (size_t j = i + 2; j < static_cast<size_t>(close); ++j) {
      const Token& a = toks[j];
      if (a.kind == TokKind::kPunct) {
        if (a.text == "<" || a.text == "(") ++depth;
        else if (a.text == ">" || a.text == ")") --depth;
        else if (a.text == ">>") depth -= 2;
        else if (a.text == "," && depth == 0) break;
      }
      last = j;
      have_last = true;
    }
    if (have_last && IsPunct(toks[last], "*")) {
      Add(Check::kPtrKey, f, t,
          "ordered container keyed by a raw pointer — comparison order is "
          "the address order, which differs run to run",
          {"key by a stable identity, or use an unordered container and "
           "never iterate it into sim-visible state"});
    }
  }

  bool AngleArgsContainTopLevelStar(const std::vector<Token>& toks,
                                    size_t open, size_t close) const {
    int depth = 0;
    for (size_t j = open + 1; j < close; ++j) {
      const Token& a = toks[j];
      if (a.kind != TokKind::kPunct) continue;
      if (a.text == "<" || a.text == "(") ++depth;
      else if (a.text == ">" || a.text == ")") --depth;
      else if (a.text == "*" && depth == 0) return true;
    }
    return false;
  }

  const Options& opts_;
  const Corpus& corpus_;
  std::vector<Finding>& out_;
  std::set<std::string> aliases_;
  std::map<std::string, FileDecls> decls_by_file_;
};

}  // namespace

void RunTokenEngine(const Options& opts, const Corpus& corpus,
                    std::vector<Finding>& out) {
  TokenEngine(opts, corpus, out).Run();
}

}  // namespace rdet
