// rexplore: search schedules for rcheck violations, replay saved decision
// traces, and minimize them to the smallest reproducing schedule.
//
//   rexplore list
//   rexplore run --workload=race-unfenced --policy=pct --depth=3
//       --seed=1 --runs=32 --max-delay=120000 --out=trace.json
//   rexplore replay --trace=trace.json [--workload=...]
//   rexplore minimize --trace=trace.json --out=trace.min.json
//
// Exit status: 0 = clean, 1 = a violation was found/reproduced, 2 = usage
// or I/O error. `run` writes the *minimized* trace of the first violation
// to --out (and, when rlin fired, the linearizability counterexample to
// <out>.rlin.json — render it with tools/rlin); `replay` re-executes a
// trace and prints both oracle reports; `minimize` shrinks an existing
// trace against the violations it reproduces.
#include <charconv>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "explore/explorer.h"
#include "explore/policy.h"
#include "explore/trace_json.h"
#include "explore/workloads.h"

namespace {

using rstore::explore::BuiltinWorkloads;
using rstore::explore::DecisionTrace;
using rstore::explore::Explorer;
using rstore::explore::ExploreOptions;
using rstore::explore::ExploreReport;
using rstore::explore::FindWorkload;
using rstore::explore::NamedWorkload;
using rstore::explore::RunOutcome;

int Usage() {
  std::fprintf(
      stderr,
      "usage: rexplore <command> [flags]\n"
      "  list                               show built-in workloads\n"
      "  run      --workload=W [--policy=random|pct|baseline] [--seed=N]\n"
      "           [--runs=N] [--depth=D] [--max-delay=NS] [--out=FILE]\n"
      "           [--no-minimize] [--minimize-budget=N]\n"
      "  replay   --trace=FILE [--workload=W]\n"
      "  minimize --trace=FILE [--workload=W] [--out=FILE]\n"
      "           [--minimize-budget=N]\n");
  return 2;
}

struct Flags {
  std::string workload;
  std::string trace_path;
  std::string out_path;
  ExploreOptions opts;
  bool ok = true;
};

bool ParseU64(std::string_view s, uint64_t* out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

Flags ParseFlags(int argc, char** argv) {
  Flags f;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&arg](std::string_view prefix) {
      return std::string(arg.substr(prefix.size()));
    };
    uint64_t n = 0;
    if (arg.rfind("--workload=", 0) == 0) {
      f.workload = value("--workload=");
    } else if (arg.rfind("--trace=", 0) == 0) {
      f.trace_path = value("--trace=");
    } else if (arg.rfind("--out=", 0) == 0) {
      f.out_path = value("--out=");
    } else if (arg.rfind("--policy=", 0) == 0) {
      f.opts.policy = value("--policy=");
    } else if (arg.rfind("--seed=", 0) == 0 && ParseU64(value("--seed="), &n)) {
      f.opts.seed = n;
    } else if (arg.rfind("--runs=", 0) == 0 && ParseU64(value("--runs="), &n)) {
      f.opts.runs = static_cast<uint32_t>(n);
    } else if (arg.rfind("--depth=", 0) == 0 &&
               ParseU64(value("--depth="), &n)) {
      f.opts.pct_depth = static_cast<uint32_t>(n);
    } else if (arg.rfind("--max-delay=", 0) == 0 &&
               ParseU64(value("--max-delay="), &n)) {
      f.opts.max_delay_ns = n;
    } else if (arg.rfind("--minimize-budget=", 0) == 0 &&
               ParseU64(value("--minimize-budget="), &n)) {
      f.opts.minimize_budget = n;
    } else if (arg == "--no-minimize") {
      f.opts.minimize = false;
    } else {
      std::fprintf(stderr, "rexplore: unknown flag '%s'\n", argv[i]);
      f.ok = false;
    }
  }
  return f;
}

const NamedWorkload* ResolveWorkload(const std::vector<NamedWorkload>& all,
                                     const std::string& from_flag,
                                     const std::string& from_trace) {
  const std::string& name = !from_flag.empty() ? from_flag : from_trace;
  if (name.empty()) {
    std::fprintf(stderr,
                 "rexplore: no workload (pass --workload, or use a trace "
                 "with a 'workload' field)\n");
    return nullptr;
  }
  const NamedWorkload* w = FindWorkload(all, name);
  if (w == nullptr) {
    std::fprintf(stderr, "rexplore: unknown workload '%s' (see list)\n",
                 name.c_str());
  }
  return w;
}

bool LoadTrace(const std::string& path, DecisionTrace* out) {
  std::ifstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "rexplore: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << f.rdbuf();
  auto trace = rstore::explore::TraceFromJson(text.str());
  if (!trace.ok()) {
    std::fprintf(stderr, "rexplore: bad trace '%s': %s\n", path.c_str(),
                 std::string(trace.status().message()).c_str());
    return false;
  }
  *out = std::move(*trace);
  return true;
}

bool SaveTrace(const std::string& path, const DecisionTrace& trace) {
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "rexplore: cannot write '%s'\n", path.c_str());
    return false;
  }
  f << rstore::explore::ToJson(trace);
  return true;
}

// Writes the rlin counterexample JSON (if any) next to a saved trace so CI
// can upload it and operators can render it with tools/rlin.
void SaveLinReport(const std::string& trace_path, const RunOutcome& o) {
  if (o.lin_report_json.empty()) return;
  const std::string path = trace_path + ".rlin.json";
  std::ofstream f(path);
  if (!f.is_open()) {
    std::fprintf(stderr, "rexplore: cannot write '%s'\n", path.c_str());
    return;
  }
  f << o.lin_report_json;
  std::printf("rlin counterexample written to %s (render with: rlin %s)\n",
              path.c_str(), path.c_str());
}

void PrintOutcome(const RunOutcome& o) {
  std::printf("  choices=%llu divergences=%llu violations=%zu vtime=%llu\n",
              static_cast<unsigned long long>(o.choices),
              static_cast<unsigned long long>(o.divergences),
              o.violation_count,
              static_cast<unsigned long long>(o.final_vtime));
  if (!o.report_text.empty()) std::fputs(o.report_text.c_str(), stdout);
}

int CmdList() {
  std::printf("built-in workloads:\n");
  for (const NamedWorkload& w : BuiltinWorkloads()) {
    std::printf("  %-16s %.*s\n", std::string(w.name).c_str(),
                static_cast<int>(w.description.size()), w.description.data());
  }
  return 0;
}

int CmdRun(const Flags& f) {
  const auto all = BuiltinWorkloads();
  const NamedWorkload* w = ResolveWorkload(all, f.workload, {});
  if (w == nullptr) return 2;
  Explorer explorer(f.opts);
  std::printf("exploring '%s' with policy=%s seed=%llu runs=%u "
              "max-delay=%lluns\n",
              std::string(w->name).c_str(), f.opts.policy.c_str(),
              static_cast<unsigned long long>(f.opts.seed), f.opts.runs,
              static_cast<unsigned long long>(f.opts.max_delay_ns));
  const ExploreReport report = explorer.Explore(w->workload);
  std::printf("runs=%u total_choices=%llu\n", report.runs_executed,
              static_cast<unsigned long long>(report.total_choices));
  if (!report.violation_found) {
    std::printf("no violations found\n");
    return 0;
  }
  std::printf("VIOLATION on run %llu (seed %llu):\n",
              static_cast<unsigned long long>(report.violating.run_index),
              static_cast<unsigned long long>(report.violating.seed));
  PrintOutcome(report.violating);
  std::printf("minimized: %zu -> %zu trace entries (%llu replays)\n",
              report.violating.trace.entries.size(),
              report.minimized.entries.size(),
              static_cast<unsigned long long>(report.minimize_replays));
  DecisionTrace to_save = report.minimized;
  to_save.workload = std::string(w->name);
  const std::string out =
      f.out_path.empty() ? "explore_trace.json" : f.out_path;
  if (SaveTrace(out, to_save)) {
    std::printf("repro trace written to %s (replay with: rexplore replay "
                "--trace=%s)\n",
                out.c_str(), out.c_str());
    SaveLinReport(out, report.violating);
  }
  return 1;
}

int CmdReplay(const Flags& f) {
  if (f.trace_path.empty()) return Usage();
  DecisionTrace trace;
  if (!LoadTrace(f.trace_path, &trace)) return 2;
  const auto all = BuiltinWorkloads();
  const NamedWorkload* w = ResolveWorkload(all, f.workload, trace.workload);
  if (w == nullptr) return 2;
  std::printf("replaying %zu-entry %s trace on '%s'\n", trace.entries.size(),
              trace.policy.c_str(), std::string(w->name).c_str());
  const RunOutcome o = Explorer::Replay(w->workload, trace);
  PrintOutcome(o);
  if (!f.out_path.empty()) SaveLinReport(f.out_path, o);
  if (o.divergences > 0) {
    std::printf("warning: %llu divergences — the workload no longer matches "
                "this trace\n",
                static_cast<unsigned long long>(o.divergences));
  }
  return o.violation_count > 0 ? 1 : 0;
}

int CmdMinimize(const Flags& f) {
  if (f.trace_path.empty()) return Usage();
  DecisionTrace trace;
  if (!LoadTrace(f.trace_path, &trace)) return 2;
  const auto all = BuiltinWorkloads();
  const NamedWorkload* w = ResolveWorkload(all, f.workload, trace.workload);
  if (w == nullptr) return 2;
  const RunOutcome before = Explorer::Replay(w->workload, trace);
  if (before.violation_count == 0) {
    std::printf("trace does not reproduce any violation; nothing to "
                "minimize\n");
    return 2;
  }
  uint64_t replays = 0;
  DecisionTrace minimized =
      Explorer::Minimize(w->workload, trace, before.violation_sigs,
                         f.opts.minimize_budget, &replays);
  minimized.workload = std::string(w->name);
  std::printf("minimized: %zu -> %zu trace entries (%llu replays)\n",
              trace.entries.size(), minimized.entries.size(),
              static_cast<unsigned long long>(replays));
  const std::string out =
      f.out_path.empty() ? f.trace_path + ".min.json" : f.out_path;
  if (!SaveTrace(out, minimized)) return 2;
  std::printf("written to %s\n", out.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view cmd = argv[1];
  const Flags f = ParseFlags(argc, argv);
  if (!f.ok) return Usage();
  if (cmd == "list") return CmdList();
  if (cmd == "run") return CmdRun(f);
  if (cmd == "replay") return CmdReplay(f);
  if (cmd == "minimize") return CmdMinimize(f);
  return Usage();
}
