// rlin: pretty-prints linearizability counterexamples (the JSON files the
// LinChecker writes on shutdown, see RSTORE_RLIN_OUT, and the .rlin.json
// files rexplore saves next to minimized traces). Accepts any number of
// report files, prints each violating per-key history with the minimized
// op core, and exits 1 when any file contains a violation — CI feeds it
// the artifact directory so a red gate also shows the human-readable
// counterexample inline.
//
//   rlin report.json [report2.json ...]
#include <cstdio>
#include <string>

#include "obs/json.h"

namespace {

using rstore::obs::JsonValue;

uint64_t Num(const JsonValue* v) {
  return v != nullptr ? static_cast<uint64_t>(v->number) : 0;
}

std::string Str(const JsonValue* v) {
  return v != nullptr ? v->str : std::string();
}

void PrintOp(const JsonValue& op) {
  const bool pending =
      op.Find("pending") != nullptr && op.Find("pending")->boolean;
  std::printf("    op %llu client %llu %s digest=%s inv=%lluns ",
              static_cast<unsigned long long>(Num(op.Find("id"))),
              static_cast<unsigned long long>(Num(op.Find("client"))),
              Str(op.Find("kind")).c_str(), Str(op.Find("digest")).c_str(),
              static_cast<unsigned long long>(Num(op.Find("inv_ns"))));
  const JsonValue* resp = op.Find("resp_ns");
  if (pending || resp == nullptr || !resp->Is(JsonValue::Type::kNumber)) {
    std::printf("resp=never (maybe-applied)\n");
  } else {
    std::printf("resp=%lluns\n",
                static_cast<unsigned long long>(Num(resp)));
  }
}

// Returns the number of violations in the file, or -1 on parse failure.
int PrintFile(const std::string& path) {
  auto root = rstore::obs::ParseJsonFile(path);
  if (!root.ok()) {
    std::fprintf(stderr, "rlin: %s: %s\n", path.c_str(),
                 root.status().message().c_str());
    return -1;
  }
  const JsonValue* violations = root->Find("violations");
  if (violations == nullptr || !violations->Is(JsonValue::Type::kArray)) {
    std::fprintf(stderr, "rlin: %s: no \"violations\" array\n", path.c_str());
    return -1;
  }

  std::printf("%s: %llu op(s) over %llu key(s), %zu violation(s)\n",
              path.c_str(),
              static_cast<unsigned long long>(Num(root->Find("ops"))),
              static_cast<unsigned long long>(Num(root->Find("keys"))),
              violations->array.size());
  int index = 0;
  for (const JsonValue& v : violations->array) {
    const JsonValue* ops = v.Find("ops");
    const size_t core =
        (ops != nullptr && ops->Is(JsonValue::Type::kArray))
            ? ops->array.size()
            : 0;
    std::printf("  #%d key %s: %llu-op history is not linearizable; "
                "minimized core has %zu op(s)\n",
                ++index, Str(v.Find("key")).c_str(),
                static_cast<unsigned long long>(Num(v.Find("history_ops"))),
                core);
    const std::string detail = Str(v.Find("detail"));
    if (!detail.empty()) std::printf("    %s\n", detail.c_str());
    if (ops != nullptr && ops->Is(JsonValue::Type::kArray)) {
      for (const JsonValue& op : ops->array) PrintOp(op);
    }
  }
  return static_cast<int>(violations->array.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rlin <report.json>...\n");
    return 2;
  }
  long total = 0;
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    const int n = PrintFile(argv[i]);
    if (n < 0) {
      failed = true;
    } else {
      total += n;
    }
  }
  std::printf("rlin: %ld violation(s) across %d file(s)\n", total, argc - 1);
  return (failed || total > 0) ? 1 : 0;
}
