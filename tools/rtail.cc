// rtail: renders an rtrace tail-latency attribution report.
//
//   rtail <attribution.json> [--band p99-p999] [--windows] [--slowest N]
//
// The input is the JSON object AppendRtraceJson emits (or any JSON
// document containing one — rtail finds the first object with "stages"
// and "attribution" members, so a whole bench result file works as-is).
//
// rtail re-checks the rtrace invariant before printing anything: the
// exporter's sum_mismatches counter must be zero and the per-stage sums
// must reproduce the total virtual time exactly. Exit 0 means the report
// is both well-formed and internally consistent; 1 otherwise.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using rstore::obs::JsonValue;

const JsonValue* FindReport(const JsonValue& v, int depth) {
  if (v.Is(JsonValue::Type::kObject)) {
    if (v.Find("stages") != nullptr && v.Find("attribution") != nullptr) {
      return &v;
    }
    if (depth < 4) {
      for (const auto& [key, child] : v.object) {
        if (const JsonValue* r = FindReport(child, depth + 1)) return r;
      }
    }
  } else if (v.Is(JsonValue::Type::kArray) && depth < 4) {
    for (const JsonValue& child : v.array) {
      if (const JsonValue* r = FindReport(child, depth + 1)) return r;
    }
  }
  return nullptr;
}

uint64_t AsU64(const JsonValue* v) {
  return v != nullptr && v->Is(JsonValue::Type::kNumber)
             ? static_cast<uint64_t>(v->number)
             : 0;
}

std::vector<uint64_t> AsU64Array(const JsonValue* v) {
  std::vector<uint64_t> out;
  if (v != nullptr && v->Is(JsonValue::Type::kArray)) {
    out.reserve(v->array.size());
    for (const JsonValue& e : v->array) {
      out.push_back(static_cast<uint64_t>(e.number));
    }
  }
  return out;
}

void PrintStageTable(const std::vector<std::string>& stages,
                     const std::vector<uint64_t>& ns, uint64_t total,
                     uint64_t count) {
  for (size_t i = 0; i < stages.size() && i < ns.size(); ++i) {
    if (ns[i] == 0) continue;
    const double share =
        total > 0 ? 100.0 * static_cast<double>(ns[i]) / total : 0.0;
    const double mean =
        count > 0 ? static_cast<double>(ns[i]) / count : 0.0;
    std::printf("    %-8s %14" PRIu64 " ns  %5.1f%%  (%.0f ns/op)\n",
                stages[i].c_str(), ns[i], share, mean);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string only_band;
  bool show_windows = false;
  long slowest = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--band" && i + 1 < argc) {
      only_band = argv[++i];
    } else if (arg == "--windows") {
      show_windows = true;
    } else if (arg == "--slowest" && i + 1 < argc) {
      slowest = std::strtol(argv[++i], nullptr, 10);
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: rtail <attribution.json> [--band NAME] "
                   "[--windows] [--slowest N]\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "rtail: no attribution file given\n");
    return 1;
  }

  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (!file) {
    std::fprintf(stderr, "rtail: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file.get())) > 0) {
    text.append(buf, n);
  }
  auto parsed = rstore::obs::ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "rtail: %s: %s\n", path.c_str(),
                 parsed.status().message().c_str());
    return 1;
  }
  const JsonValue* report = FindReport(parsed.value(), 0);
  if (report == nullptr) {
    std::fprintf(stderr, "rtail: %s holds no rtrace report\n", path.c_str());
    return 1;
  }

  std::vector<std::string> stages;
  if (const JsonValue* sv = report->Find("stages");
      sv != nullptr && sv->Is(JsonValue::Type::kArray)) {
    for (const JsonValue& s : sv->array) stages.push_back(s.str);
  }
  const uint64_t ops = AsU64(report->Find("ops"));
  const uint64_t mismatches = AsU64(report->Find("sum_mismatches"));
  const uint64_t total_sum = AsU64(report->Find("total_ns_sum"));
  const std::vector<uint64_t> stage_sum =
      AsU64Array(report->Find("stage_ns_sum"));

  // The invariant, re-checked from the serialized numbers: the exporter
  // saw no per-op mismatch, and the aggregate stages reproduce the
  // aggregate total exactly.
  uint64_t stage_total = 0;
  for (const uint64_t v : stage_sum) stage_total += v;
  int rc = 0;
  if (mismatches != 0) {
    std::fprintf(stderr, "rtail: %" PRIu64 " ops failed stage-sum == total\n",
                 mismatches);
    rc = 1;
  }
  if (stage_total != total_sum) {
    std::fprintf(stderr,
                 "rtail: aggregate stage sum %" PRIu64
                 " != total %" PRIu64 "\n",
                 stage_total, total_sum);
    rc = 1;
  }

  std::printf("rtrace attribution: %s\n", path.c_str());
  std::printf("  mode=%s ops=%" PRIu64 " (stage sums verified exact)\n",
              report->Find("mode") != nullptr ? report->Find("mode")->str.c_str()
                                              : "?",
              ops);
  if (const JsonValue* q = report->Find("quantiles")) {
    std::printf("  p50=%" PRIu64 " ns  p90=%" PRIu64 " ns  p99=%" PRIu64
                " ns  p999=%" PRIu64 " ns  max=%" PRIu64 " ns\n",
                AsU64(q->Find("p50_ns")), AsU64(q->Find("p90_ns")),
                AsU64(q->Find("p99_ns")), AsU64(q->Find("p999_ns")),
                AsU64(q->Find("max_ns")));
  }

  if (const JsonValue* attr = report->Find("attribution");
      attr != nullptr && attr->Is(JsonValue::Type::kArray)) {
    for (const JsonValue& band : attr->array) {
      const std::string name =
          band.Find("band") != nullptr ? band.Find("band")->str : "?";
      if (!only_band.empty() && name != only_band) continue;
      const uint64_t count = AsU64(band.Find("count"));
      const uint64_t total = AsU64(band.Find("total_ns"));
      std::printf("  band %-9s [%" PRIu64 ", %" PRIu64 "] ns  %" PRIu64
                  " ops  %" PRIu64 " ns total\n",
                  name.c_str(), AsU64(band.Find("lo_ns")),
                  AsU64(band.Find("hi_ns")), count, total);
      PrintStageTable(stages, AsU64Array(band.Find("stage_ns")), total, count);
    }
  }

  if (show_windows) {
    if (const JsonValue* wins = report->Find("windows");
        wins != nullptr && wins->Is(JsonValue::Type::kArray)) {
      std::printf("  windows (start_ns count p50 p99 p999):\n");
      for (const JsonValue& w : wins->array) {
        std::printf("    %12" PRIu64 " %8" PRIu64 " %10" PRIu64 " %10" PRIu64
                    " %10" PRIu64 "\n",
                    AsU64(w.Find("start_ns")), AsU64(w.Find("count")),
                    AsU64(w.Find("p50_ns")), AsU64(w.Find("p99_ns")),
                    AsU64(w.Find("p999_ns")));
      }
    }
  }

  if (slowest > 0) {
    if (const JsonValue* slow = report->Find("slowest");
        slow != nullptr && slow->Is(JsonValue::Type::kArray)) {
      std::printf("  slowest ops:\n");
      long shown = 0;
      for (const JsonValue& op : slow->array) {
        if (shown++ >= slowest) break;
        std::printf("    op %" PRIu64 "  total %" PRIu64 " ns  server %" PRIu64
                    "\n",
                    AsU64(op.Find("op_id")), AsU64(op.Find("total_ns")),
                    AsU64(op.Find("server")));
        const std::vector<uint64_t> per = AsU64Array(op.Find("stage_ns"));
        uint64_t per_total = 0;
        for (const uint64_t v : per) per_total += v;
        if (per_total != AsU64(op.Find("total_ns"))) {
          std::fprintf(stderr,
                       "rtail: op %" PRIu64 " stage sum != total\n",
                       AsU64(op.Find("op_id")));
          rc = 1;
        }
        PrintStageTable(stages, per, per_total, 1);
      }
    }
  }
  return rc;
}
