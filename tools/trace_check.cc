// trace_check: validates a Chrome trace_event JSON file exported by the
// obs layer (bench --trace). Exits 0 and prints a summary when the file
// is structurally valid; exits 1 with a diagnostic otherwise.
//
//   trace_check trace.json [--require-category cat]... [--require-flows]
//
// --require-category fails the check unless at least one span/instant of
// that category is present — CI uses it to assert every instrumented
// layer actually emitted. --require-flows fails unless at least one
// complete flow (start + end, validated by the checker) is present.
#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace_check.h"

int main(int argc, char** argv) {
  std::string path;
  std::vector<std::string> required;
  bool require_flows = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-category" && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (arg == "--require-flows") {
      require_flows = true;
    } else if (!arg.empty() && arg[0] != '-' && path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: trace_check <trace.json> "
                   "[--require-category cat]... [--require-flows]\n");
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "trace_check: no trace file given\n");
    return 1;
  }

  auto summary = rstore::obs::ValidateChromeTraceFile(path);
  if (!summary.ok()) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path.c_str(),
                 summary.status().message().c_str());
    return 1;
  }

  std::printf(
      "%s: %zu events (%zu spans, %zu flow events / %zu flows) "
      "across %zu processes\n",
      path.c_str(), summary->total_events, summary->complete_spans,
      summary->flow_events, summary->flow_ids, summary->processes);
  for (const auto& [category, count] : summary->events_by_category) {
    std::printf("  %-10s %zu\n", category.c_str(), count);
  }

  int rc = 0;
  for (const std::string& category : required) {
    if (!summary->HasCategory(category)) {
      std::fprintf(stderr, "trace_check: missing required category '%s'\n",
                   category.c_str());
      rc = 1;
    }
  }
  if (require_flows && summary->flow_ids == 0) {
    std::fprintf(stderr, "trace_check: no flow events found\n");
    rc = 1;
  }
  return rc;
}
